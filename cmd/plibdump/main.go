// Command plibdump inspects a flushed heap image offline: it verifies the
// allocator's integrity (the shared-memory fsck), prints the store's
// statistics and configuration, and optionally dumps entries — all without
// a running bookkeeper.
//
//	plibdump -file /var/tmp/store.img            # verify + summarize
//	plibdump -file /var/tmp/store.img -keys      # also list keys
//	plibdump -file /var/tmp/store.img -dump -max 10
//	plibdump -file /var/tmp/store.img -metrics   # latency histograms
//	plibdump -file /var/tmp/store.img -verify    # deep-verify all slots
//	plibdump -file /var/lib/plibmc               # cluster dir: verify every shard
//
// -verify checks every image slot for the path (the base file plus the
// .a/.b checkpoint slots): header and per-region checksums, the
// allocator fsck, and a deep item audit (header checksums, hash↔key
// agreement, value checksums). It exits nonzero if any slot is corrupt,
// reporting exactly which 64 KiB regions and which items are damaged.
//
// Pointing -file at a directory switches to cluster mode: every
// shard-*.img base in the directory (the layout memcachedd -shards
// writes) is deep-verified with all its checkpoint slots, and the exit
// code is nonzero if any shard has a corrupt slot. The cluster's
// routing metadata is reported too: the ring.json manifest (shard count
// and virtual nodes), and — when a reshard.json marker is present — the
// fact that a live resize was interrupted mid-migration, which the next
// OpenCluster repairs by sweeping stray keys.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"plibmc/internal/core"
	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

func main() {
	var (
		file  = flag.String("file", "", "heap image to inspect (required)")
		keys  = flag.Bool("keys", false, "list keys")
		dump  = flag.Bool("dump", false, "dump keys and values")
		locks   = flag.Bool("locks", false, "list held heap-resident locks with their owners")
		metrics = flag.Bool("metrics", false, "print the per-op-class latency histograms recorded in the image")
		verify  = flag.Bool("verify", false, "deep-verify every image slot (checksums, allocator fsck, item audit); exit nonzero on corruption")
		max     = flag.Int("max", 0, "stop after this many entries (0 = all)")
	)
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "plibdump: -file is required")
		os.Exit(2)
	}
	if fi, err := os.Stat(*file); err == nil && fi.IsDir() {
		os.Exit(verifyShardDir(*file, *max))
	}
	if *verify {
		os.Exit(verifyImages(*file, *max))
	}

	heap, err := shm.Load(*file)
	fatalIf(err)
	fmt.Printf("heap: %d bytes (%d pages)\n", heap.Size(), heap.Pages())

	alloc, err := ralloc.Open(heap)
	fatalIf(err)
	rep, err := alloc.Check()
	if err != nil {
		fmt.Fprintf(os.Stderr, "plibdump: INTEGRITY FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("allocator: verified OK — %d free / %d class / %d large chunks, %d free blocks, %d live bytes\n",
		rep.FreeChunks, rep.ClassChunks, rep.LargeChunks, rep.FreeBlocks, rep.LiveBytes)

	store, err := core.Attach(alloc)
	fatalIf(err)
	if *locks {
		// Post-mortem triage of an image flushed after a crash: which
		// thread died holding what. The image is offline, so every owner
		// is dead by definition — a live store would be repaired online
		// by the bookkeeper, not dumped.
		printLocks(store, alloc)
	}
	store.ResetGate()
	// Break whatever locks the dying threads left held before walking:
	// the key/value walk takes stripe locks, and in an offline image no
	// owner can ever release one.
	store.ForceReleaseDeadLocks(func(uint64) bool { return true })
	alloc.RepairLocks()
	st := store.Stats()
	fmt.Printf("store: 2^%d buckets, %d items, %d bytes; lifetime: %d gets (%d hits), %d sets, %d evictions, %d expired\n",
		store.HashPower(), st.CurrItems, st.Bytes, st.Gets, st.GetHits, st.Sets, st.Evictions, st.Expired)
	if store.Expanding() {
		fmt.Println("store: background expansion in progress (will resume when reopened)")
	}
	if *metrics {
		// The latency histograms live in the heap, so they survive into
		// the image — including one written after a crash. What the store
		// measured in its final life is readable post mortem.
		printLatency(store)
	}

	ctx := store.NewCtx(1)
	if lens := ctx.LRULengths(); len(lens) > 0 {
		minL, maxL, total := lens[0], lens[0], 0
		for _, n := range lens {
			if n < minL {
				minL = n
			}
			if n > maxL {
				maxL = n
			}
			total += n
		}
		fmt.Printf("lru: %d lists, %d items (min %d / max %d per list)\n", len(lens), total, minL, maxL)
	}
	for _, cs := range alloc.ClassStats() {
		fmt.Printf("class %6d B: %3d chunks, %5d/%5d blocks free\n",
			cs.ClassSize, cs.Chunks, cs.FreeBlocks, cs.TotalBlocks)
	}

	if !*keys && !*dump {
		return
	}
	n := 0
	ctx.ForEach(func(e *core.Entry) bool {
		if *dump {
			fmt.Printf("%q flags=%d exp=%d cas=%d value=%q\n", e.Key, e.Flags, e.Exptime, e.CAS, e.Value)
		} else {
			fmt.Printf("%q (%d bytes)\n", e.Key, len(e.Value))
		}
		n++
		return *max == 0 || n < *max
	})
	fmt.Printf("listed %d entries\n", n)
}

// verifyImages deep-verifies every image slot for base (the base file and
// the .a/.b checkpoint slots) and returns the process exit code: 0 if
// every existing slot is fully intact, 1 if any slot shows corruption.
// An operator running with A/B checkpoints wants to know about a decayed
// older slot even while the newest one still verifies — that is one disk
// error away from data loss.
func verifyImages(base string, max int) int {
	cands := shm.ImageCandidates(base)
	if len(cands) == 0 {
		fmt.Fprintf(os.Stderr, "plibdump: no heap image found at %s\n", base)
		return 1
	}
	exit := 0
	for _, cand := range cands {
		if !verifyOne(cand, max) {
			exit = 1
		}
	}
	return exit
}

// verifyShardDir deep-verifies a cluster directory: every shard-*.img
// base (and its checkpoint slots, via verifyImages) gets the full chain.
// One decayed slot on one shard makes the whole run exit nonzero — an
// operator checking the fleet's images wants the union of problems.
func verifyShardDir(dir string, max int) int {
	// A shard base may exist only as its .a/.b checkpoint slots (a clean
	// shutdown writes a checkpoint, not the bare base image), so derive
	// the base set from every slot's name.
	slots, err := filepath.Glob(filepath.Join(dir, "shard-*.img*"))
	fatalIf(err)
	seen := make(map[string]bool)
	var bases []string
	for _, s := range slots {
		base := strings.TrimSuffix(strings.TrimSuffix(s, ".a"), ".b")
		if !strings.HasSuffix(base, ".img") || seen[base] {
			continue // .tmp leftovers and duplicates
		}
		seen[base] = true
		bases = append(bases, base)
	}
	if len(bases) == 0 {
		fmt.Fprintf(os.Stderr, "plibdump: no shard-*.img images under %s\n", dir)
		return 1
	}
	sort.Strings(bases)
	fmt.Printf("%s: %d shards\n", dir, len(bases))
	describeRing(dir, len(bases))
	exit := 0
	bad := 0
	for _, base := range bases {
		if verifyImages(base, max) != 0 {
			exit = 1
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("cluster: %d of %d shards have corrupt or unreadable slots\n", bad, len(bases))
	} else {
		fmt.Printf("cluster: all %d shards verified OK\n", len(bases))
	}
	return exit
}

// describeRing reports the cluster's routing manifest (ring.json) and
// whether a live resharding was cut short (reshard.json): a directory
// with the marker present holds a consistent but interrupted migration —
// every key is on its old or its new shard, possibly both — and the
// next OpenCluster sweeps the strays. The shard *images* still verify
// individually either way; this is routing metadata, not heap state.
func describeRing(dir string, imgShards int) {
	var manifest struct {
		Shards       int `json:"shards"`
		VirtualNodes int `json:"virtual_nodes"`
	}
	if b, err := os.ReadFile(filepath.Join(dir, "ring.json")); err == nil {
		if json.Unmarshal(b, &manifest) == nil && manifest.Shards > 0 {
			fmt.Printf("ring: %d shards, %d virtual nodes per shard\n",
				manifest.Shards, manifest.VirtualNodes)
			if manifest.Shards != imgShards {
				fmt.Printf("ring: WARNING — manifest says %d shards but %d shard images present\n",
					manifest.Shards, imgShards)
			}
		} else {
			fmt.Println("ring: ring.json present but unreadable")
		}
	}
	var marker struct {
		FromShards int `json:"from_shards"`
		ToShards   int `json:"to_shards"`
	}
	if b, err := os.ReadFile(filepath.Join(dir, "reshard.json")); err == nil {
		if json.Unmarshal(b, &marker) == nil {
			fmt.Printf("ring: MIGRATION IN PROGRESS — resize %d → %d shards was interrupted; "+
				"keys may be duplicated across old and new owners until the next open sweeps them\n",
				marker.FromShards, marker.ToShards)
		} else {
			fmt.Println("ring: reshard.json present but unreadable — a resize was interrupted")
		}
	}
}

// verifyOne runs one slot through the full verification chain, printing a
// per-region and per-item report. Returns true if the slot is intact.
func verifyOne(cand shm.Candidate, max int) bool {
	fmt.Printf("%s:\n", cand.Path)
	if cand.Err != nil {
		fmt.Printf("  header: UNREADABLE: %v\n", cand.Err)
		return false
	}
	rep, err := shm.VerifyImage(cand.Path)
	if err != nil {
		fmt.Printf("  checksums: UNREADABLE: %v\n", err)
		return false
	}
	fmt.Printf("  header: OK — generation %d, %d heap bytes in %d regions of %d KiB\n",
		rep.Info.Generation, rep.Info.HeapBytes, rep.Info.Regions, rep.Info.RegionSize>>10)
	if !rep.OK() {
		if !rep.TableOK {
			fmt.Println("  checksums: region table corrupt")
		}
		for _, f := range rep.BadRegions {
			fmt.Printf("  checksums: region %d CORRUPT (heap bytes [%#x, %#x), crc %016x want %016x)\n",
				f.Region, f.Off, f.Off+f.Len, f.Got, f.Want)
		}
		if len(rep.BadRegions) == 0 && rep.TableOK && !rep.ImageCRCOK {
			fmt.Println("  checksums: whole-image checksum mismatch")
		}
		return false
	}
	fmt.Printf("  checksums: OK — %d regions, table and whole-image CRCs verified\n", rep.Info.Regions)

	heap, _, err := shm.LoadImage(cand.Path)
	if err != nil {
		fmt.Printf("  load: FAILED: %v\n", err)
		return false
	}
	alloc, err := ralloc.Open(heap)
	if err != nil {
		fmt.Printf("  allocator: FAILED to open: %v\n", err)
		return false
	}
	chk, err := alloc.Check()
	if err != nil {
		fmt.Printf("  allocator: INTEGRITY FAILURE: %v\n", err)
		return false
	}
	fmt.Printf("  allocator: OK — %d live bytes, %d free blocks\n", chk.LiveBytes, chk.FreeBlocks)

	store, err := core.Attach(alloc)
	if err != nil {
		fmt.Printf("  store: FAILED to attach: %v\n", err)
		return false
	}
	store.ResetGate()
	store.ForceReleaseDeadLocks(func(uint64) bool { return true })
	alloc.RepairLocks()
	ctx := store.NewCtx(1)
	scanned, faults := ctx.AuditItems(max)
	if len(faults) > 0 {
		fmt.Printf("  items: %d scanned, %d CORRUPT\n", scanned, len(faults))
		for _, f := range faults {
			fmt.Printf("    %s\n", f)
		}
		return false
	}
	fmt.Printf("  items: OK — %d deep-verified\n", scanned)
	return true
}

// printLocks reports the operation gate, every held store lock, and the
// allocator's large-path lock, decoding each owner token (PID<<20|TID+1)
// into the process and thread that held it when the image was written.
func printLocks(store *core.Store, alloc *ralloc.Allocator) {
	inflight, barrier := store.InFlightOps()
	fmt.Printf("gate: %d in-flight ops recorded, barrier=%v\n", inflight, barrier)
	held := store.HeldLocks()
	if o := alloc.AllocLockOwner(); o != 0 {
		held = append(held, core.HeldLock{Kind: "alloc", Owner: o})
	}
	if len(held) == 0 {
		fmt.Println("locks: none held")
		return
	}
	fmt.Printf("locks: %d held\n", len(held))
	for _, l := range held {
		pid := l.Owner >> 20
		tid := l.Owner&(1<<20-1) - 1
		fmt.Printf("  %-5s %4d  owner=%#x (pid %d, tid %d) — dead in this image\n",
			l.Kind, l.Index, l.Owner, pid, tid)
	}
}

// printLatency dumps the heap-resident per-op-class latency histograms.
func printLatency(store *core.Store) {
	if !store.LatencyEnabled() {
		fmt.Println("latency: recording disabled in this image")
		return
	}
	ls := store.Latency()
	fmt.Printf("latency: sampling 1 in %d ops\n", store.LatencySampleEvery())
	for class := 0; class < core.NumLatClasses; class++ {
		h := &ls.Classes[class]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-6s %8d samples  mean %8v  p50 %8v  p99 %8v  max %8v\n",
			core.LatClassNames[class], h.Count(), h.Mean(),
			h.Percentile(50), h.Percentile(99), h.Max())
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "plibdump:", err)
		os.Exit(1)
	}
}
