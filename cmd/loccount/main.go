// Command loccount reproduces the code-complexity comparison of §4.2: the
// paper reports that converting memcached to a protected library removed
// ~6800 lines (≈5200 of socket/protocol handling, ≈1600 of slab memory
// management) and added ~600, a net reduction of ~24% on a ~26 KLoC base.
//
// In this repository both versions coexist, so the analog is a static
// count over the tree: the modules that exist only for the socket baseline
// (deleted by the conversion) versus the modules the conversion added
// (Hodor integration and shared-memory plumbing), with the K-V data plane
// common to both.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

type category struct {
	name string
	desc string
	dirs []string
}

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	categories := []category{
		{
			name: "baseline-only (deleted by the conversion)",
			desc: "socket server, wire protocols, client library, slab allocator",
			dirs: []string{"internal/server", "internal/protocol", "internal/client", "internal/slab"},
		},
		{
			name: "plib-only (added by the conversion)",
			desc: "Hodor integration, public protected-library API",
			dirs: []string{"memcached"},
		},
		{
			name: "shared data plane",
			desc: "hash table, items, LRU, stats (both versions)",
			dirs: []string{"internal/core"},
		},
		{
			name: "substrates",
			desc: "Hodor runtime, Ralloc, shared memory, PKU, processes",
			dirs: []string{"internal/hodor", "internal/ralloc", "internal/shm", "internal/pku", "internal/proc"},
		},
	}

	fmt.Println("== §4.2 analog: code volume by role (non-test Go lines) ==")
	totals := map[string]int{}
	for _, cat := range categories {
		lines := 0
		for _, d := range cat.dirs {
			n, err := countDir(filepath.Join(*root, d))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loccount: %s: %v\n", d, err)
				os.Exit(1)
			}
			lines += n
		}
		totals[cat.name] = lines
		fmt.Printf("%-45s %6d lines   (%s)\n", cat.name, lines, cat.desc)
	}

	base := totals[categories[0].name] + totals[categories[2].name] + totals[categories[3].name]
	removed := totals[categories[0].name]
	added := totals[categories[1].name]
	fmt.Printf("\noriginal-equivalent base (baseline-only + shared + substrates): %d lines\n", base)
	fmt.Printf("removed by conversion: %d lines (%.0f%% of base; paper: ~26%%)\n",
		removed, 100*float64(removed)/float64(base))
	fmt.Printf("added by conversion:   %d lines (%.0f%% of base; paper: ~2%%)\n",
		added, 100*float64(added)/float64(base))
	fmt.Printf("net change: %+.0f%% (paper: ~-24%%)\n",
		100*(float64(added)-float64(removed))/float64(base))
}

// countDir counts non-blank lines in non-test Go files under dir.
func countDir(dir string) (int, error) {
	total := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				total++
			}
		}
		return sc.Err()
	})
	return total, err
}
