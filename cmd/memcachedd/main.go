// Command memcachedd runs the socket front ends.
//
// Default mode is the baseline: the from-scratch reimplementation of the
// original socket-based memcached that the paper compares against.
//
//	memcachedd -listen unix:/tmp/mc.sock -threads 4 -m 1024
//
// With -shards N it instead fronts a cluster of N protected-library
// stores behind the consistent-hash proxy tier: baseline-protocol clients
// get sharding (and hot-key read replication) transparently, and each
// shard keeps its own backing file, checkpoint slots, and repair domain.
//
//	memcachedd -shards 4 -path /var/lib/plibmc -listen tcp:0.0.0.0:11211
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"plibmc/internal/server"
	"plibmc/internal/shm"
	"plibmc/memcached"
)

func main() {
	var (
		listen  = flag.String("listen", "unix:/tmp/memcachedd.sock", "net:addr to listen on")
		threads = flag.Int("threads", 4, "number of server threads (the paper compares 4 and 8)")
		memMB   = flag.Int64("m", 1024, "memory limit in MiB")
		hashPow = flag.Uint("hashpower", 16, "log2 of the bucket count")
		metrics = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/vars over HTTP on this address")

		shards  = flag.Int("shards", 0, "front a cluster of N protected-library stores instead of the baseline (0 = baseline)")
		path    = flag.String("path", "", "cluster mode: directory holding one backing file per shard (empty = in-memory shards)")
		vnodes  = flag.Int("vnodes", 0, "cluster mode: virtual nodes per shard on the placement ring (0 = default)")
		hotThr  = flag.Uint64("hotkey-threshold", 0, "cluster mode: windowed read count that marks a key hot and replicates its reads (0 = off)")
		ckptSec = flag.Int("checkpoint-secs", 0, "cluster mode: per-shard checkpoint interval in seconds (0 = only on shutdown)")
	)
	flag.Parse()

	network, addr, ok := strings.Cut(*listen, ":")
	if !ok {
		fmt.Fprintln(os.Stderr, "memcachedd: -listen must be net:addr")
		os.Exit(1)
	}
	if network == "unix" {
		os.Remove(addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *shards > 0 {
		runCluster(network, addr, *shards, *path, *vnodes, *hotThr, *ckptSec, *memMB, *hashPow, *metrics, sig)
		return
	}

	srv, err := server.New(server.Config{
		Network: network, Addr: addr, Threads: *threads,
		MemLimit: *memMB << 20, HashPower: *hashPow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memcachedd:", err)
		os.Exit(1)
	}
	fmt.Printf("memcachedd: listening on %s with %d server threads\n", *listen, *threads)
	go srv.Serve()
	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, srv.Store().MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "memcachedd: metrics server:", err)
			}
		}()
		fmt.Printf("memcachedd: metrics on http://%s/metrics\n", *metrics)
	}

	<-sig
	srv.Close()
	snap := srv.Store().Snapshot()
	fmt.Printf("memcachedd: stopped; %d items, %d gets (%d hits), %d sets, %d evictions\n",
		snap.CurrItems, snap.Gets, snap.GetHits, snap.Sets, snap.Evictions)
}

// runCluster serves the sharded proxy tier: N protected-library stores
// behind one listener.
func runCluster(network, addr string, shards int, dir string, vnodes int,
	hotThr uint64, ckptSec int, memMB int64, hashPow uint, metricsAddr string,
	sig chan os.Signal) {
	cfg := memcached.ClusterConfig{
		Shards:          shards,
		VirtualNodes:    vnodes,
		Dir:             dir,
		HotKeyThreshold: hotThr,
		Store: memcached.Config{
			// The per-process memory budget divides across shards so
			// -m means the same thing in both modes.
			HeapBytes: uint64(memMB<<20) / uint64(shards),
			HashPower: hashPow,
		},
	}
	open := dir != ""
	if open {
		// Reopen when every shard has a loadable image; otherwise format.
		// A clean shutdown leaves .a/.b checkpoint slots rather than the
		// bare base file, so check candidate slots, not the base path.
		for i := 0; i < shards; i++ {
			base := filepath.Join(dir, memcached.ShardImageName(i))
			if len(shm.ImageCandidates(base)) == 0 {
				open = false
				break
			}
		}
	}
	var (
		c   *memcached.Cluster
		err error
	)
	if open {
		c, err = memcached.OpenCluster(cfg)
	} else {
		c, err = memcached.CreateCluster(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "memcachedd:", err)
		os.Exit(1)
	}
	srv, err := c.ServeRemote(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memcachedd:", err)
		os.Exit(1)
	}
	fmt.Printf("memcachedd: %d-shard cluster proxy on %s:%s (reopened=%v, hotkey-threshold=%d)\n",
		shards, network, addr, open, hotThr)
	c.StartMaintenance(time.Second)
	c.StartSupervisor(time.Second)
	if ckptSec > 0 && dir != "" {
		c.StartCheckpointing(time.Duration(ckptSec) * time.Second)
	}
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", c.MetricsHandler())
		// POST /admin/resize?shards=N — start a live resharding to N
		// shards; the background migrator streams segments while the
		// proxy keeps serving. GET /admin/migration reports progress.
		mux.HandleFunc("/admin/resize", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			n, err := strconv.Atoi(r.URL.Query().Get("shards"))
			if err != nil || n < 1 {
				http.Error(w, "resize: ?shards=N (N >= 1) required", http.StatusBadRequest)
				return
			}
			if err := c.Resize(n); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, "resizing to %d shards\n", n)
		})
		mux.HandleFunc("/admin/migration", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(c.MigrationStatus()) //nolint:errcheck
		})
		// GET /admin/shards — per-shard lifecycle state: breaker position,
		// rebuild counters, whether the shard came up empty at open.
		mux.HandleFunc("/admin/shards", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(c.ShardStatuses()) //nolint:errcheck
		})
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "memcachedd: metrics server:", err)
			}
		}()
		fmt.Printf("memcachedd: cluster metrics on http://%s/metrics, admin on /admin/resize, /admin/migration, /admin/shards\n", metricsAddr)
	}

	<-sig
	srv.Close()
	if err := c.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "memcachedd: shutdown:", err)
	}
	agg := c.Stats()
	fmt.Printf("memcachedd: cluster stopped; %d items, %d gets (%d hits), %d sets across %d shards\n",
		agg.CurrItems, agg.Gets, agg.GetHits, agg.Sets, c.Shards())
}
