// Command memcachedd runs the baseline: the from-scratch reimplementation
// of the original socket-based memcached that the paper compares against.
//
//	memcachedd -listen unix:/tmp/mc.sock -threads 4 -m 1024
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"plibmc/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", "unix:/tmp/memcachedd.sock", "net:addr to listen on")
		threads = flag.Int("threads", 4, "number of server threads (the paper compares 4 and 8)")
		memMB   = flag.Int64("m", 1024, "memory limit in MiB")
		hashPow = flag.Uint("hashpower", 16, "log2 of the bucket count")
		metrics = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/vars over HTTP on this address")
	)
	flag.Parse()

	network, addr, ok := strings.Cut(*listen, ":")
	if !ok {
		fmt.Fprintln(os.Stderr, "memcachedd: -listen must be net:addr")
		os.Exit(1)
	}
	if network == "unix" {
		os.Remove(addr)
	}
	srv, err := server.New(server.Config{
		Network: network, Addr: addr, Threads: *threads,
		MemLimit: *memMB << 20, HashPower: *hashPow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memcachedd:", err)
		os.Exit(1)
	}
	fmt.Printf("memcachedd: listening on %s with %d server threads\n", *listen, *threads)
	go srv.Serve()
	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, srv.Store().MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "memcachedd: metrics server:", err)
			}
		}()
		fmt.Printf("memcachedd: metrics on http://%s/metrics\n", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	snap := srv.Store().Snapshot()
	fmt.Printf("memcachedd: stopped; %d items, %d gets (%d hits), %d sets, %d evictions\n",
		snap.CurrItems, snap.Gets, snap.GetHits, snap.Sets, snap.Evictions)
}
