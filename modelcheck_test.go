package plibmc

// Model-based history checking: torture drivers that replay recorded
// concurrent workloads — locked mutations, the seqlock Get fast path,
// MGet batches, incr/decr/append/prepend, Touch/GAT, FlushAll — through
// real core.Ctx paths across multiple goroutines and multiple shm views,
// then verify the recorded history is linearizable against the
// sequential reference model (internal/model + internal/linearcheck).
//
// Four drivers:
//   - TestModelCheckMixed: the crash-free mixed workload (the main run;
//     size and seed tunable with -modelcheck.ops / -modelcheck.seed).
//   - TestModelCheckFaults: the same machinery with fault points armed —
//     every round kills a client at a different registered crash site,
//     recovery repairs online, and the history (killed calls recorded as
//     pending, the repair drop contract enabled) must still linearize.
//   - TestModelCheckSeededViolation: mutation-mode self-test. The
//     in-place increment skips its seqlock bracket and tears the value
//     write (core.Ctx.UnsafeIncrSkipSeqlock); the checker must catch the
//     torn read and shrink the history to a minimal witness.
//   - TestModelCheckCrashTear: a known crash-semantics relaxation, kept
//     as a sensitivity proof: a crash between an in-place increment's
//     value write and its CAS-generation bump leaves the new value under
//     the old generation, which the checker's generation-uniqueness
//     pre-pass detects deterministically.
//
// TestModelCheckExpiryHistory replays a clock-stepped sequential history
// through the real session paths so the model's expiry/saturation/wrap
// semantics are pinned against the implementation's.

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/internal/linearcheck"
	"plibmc/internal/model"
	"plibmc/memcached"
)

var (
	modelcheckOps  = flag.Int("modelcheck.ops", 12000, "op budget for the mixed model-check run")
	modelcheckSeed = flag.Int64("modelcheck.seed", 7, "PRNG seed for the model-check workloads")
)

// The torture clock is frozen far enough in the future that absolute
// expiry timestamps (> the 30-day relative cutoff) are available.
const (
	mcFrozenNow = int64(10_000_000)
	mcFarExpiry = int64(20_000_000)
)

// mcResult maps a session error to a model result; ok=false means the
// call crashed (killed process / recovered panic) and its effect is
// unknown — the recorder leaves such ops pending.
func mcResult(err error) (model.Res, bool) {
	switch {
	case err == nil:
		return model.ResOK, true
	case errors.Is(err, memcached.ErrNotFound):
		return model.ResNotFound, true
	case errors.Is(err, memcached.ErrExists):
		return model.ResExists, true
	case errors.Is(err, memcached.ErrCASMismatch):
		return model.ResCASMismatch, true
	case errors.Is(err, memcached.ErrNotNumeric):
		return model.ResNotNumeric, true
	case errors.Is(err, memcached.ErrValueTooBig):
		return model.ResTooBig, true
	case errors.Is(err, memcached.ErrNoSpace):
		return model.ResNoSpace, true
	}
	return model.ResUnknown, false
}

// mcSession is the slice of the session API the workers drive. Both
// *memcached.Session (one store) and *memcached.ClusterSession (sharded:
// every call routes through the placement ring) satisfy it, so the same
// torture workloads check both topologies.
type mcSession interface {
	Get(key []byte) ([]byte, uint32, error)
	Gets(key []byte) ([]byte, uint32, uint64, error)
	Set(key, value []byte, flags uint32, exptime int64) error
	Add(key, value []byte, flags uint32, exptime int64) error
	Replace(key, value []byte, flags uint32, exptime int64) error
	CAS(key, value []byte, flags uint32, exptime int64, cas uint64) error
	Delete(key []byte) error
	Increment(key []byte, delta uint64) (uint64, error)
	Decrement(key []byte, delta uint64) (uint64, error)
	Append(key, data []byte) error
	Prepend(key, data []byte) error
	Touch(key []byte, exptime int64) error
	GetAndTouch(key []byte, exptime int64) ([]byte, uint32, error)
	FlushAll() error
	MGet(keys [][]byte) ([]core.GetResult, error)
	ExecBatch(ops []memcached.BatchOp) ([]memcached.BatchResult, error)
}

// mcWorker drives one session and records every call on its tape.
type mcWorker struct {
	t       *testing.T
	s       mcSession
	rec     *linearcheck.Recorder
	tape    *linearcheck.Tape
	rng     *rand.Rand
	id      int
	seq     int
	now     int64
	faulty  bool // crashes expected: record them as pending, don't fail
	lastCAS map[string]uint64
}

func newMCWorker(t *testing.T, s mcSession, rec *linearcheck.Recorder, tapeIdx int, seed int64, faulty bool) *mcWorker {
	if ss, ok := s.(*memcached.Session); ok {
		ss.Ctx().Store().SetClock(func() int64 { return mcFrozenNow })
	}
	// Cluster sessions span several stores; the drivers freeze each
	// shard's clock directly before building workers.
	return &mcWorker{
		t: t, s: s, rec: rec, tape: rec.Tape(tapeIdx),
		rng: rand.New(rand.NewSource(seed + int64(tapeIdx)*9973)),
		id:  tapeIdx, now: mcFrozenNow, faulty: faulty,
		lastCAS: make(map[string]uint64),
	}
}

// finish stamps the op's return and result; a crashed call is left
// pending (its effect window extends past the repair that follows) and
// the worker reports itself dead.
func (w *mcWorker) finish(i int, err error, fill func(*model.Op)) bool {
	res, completed := mcResult(err)
	if !completed {
		if !w.faulty {
			w.t.Errorf("worker %d: unexpected crash error: %v", w.id, err)
		}
		return false
	}
	w.tape.End(i, func(op *model.Op) {
		op.Res = res
		if res == model.ResOK && fill != nil {
			fill(op)
		}
	})
	return true
}

func (w *mcWorker) val() []byte {
	w.seq++
	return []byte(fmt.Sprintf("w%d.%d", w.id, w.seq))
}

func (w *mcWorker) exp() int64 {
	if w.rng.Intn(10) < 3 {
		return mcFarExpiry
	}
	return 0
}

func (w *mcWorker) doGets(key string) bool {
	i := w.tape.Begin(model.Op{Kind: model.Get, Key: key, Now: w.now})
	v, f, cas, err := w.s.Gets([]byte(key))
	if err == nil {
		w.lastCAS[key] = cas
	}
	return w.finish(i, err, func(op *model.Op) {
		op.RVal = append([]byte(nil), v...)
		op.RFlags = f
		op.RCAS = cas
	})
}

// doGet records a read without observing the CAS generation (RCAS 0 =
// unbound); the mutation-mode self-test uses it to force detection
// through the search rather than the generation-uniqueness pre-pass.
func (w *mcWorker) doGet(key string) bool {
	i := w.tape.Begin(model.Op{Kind: model.Get, Key: key, Now: w.now})
	v, f, err := w.s.Get([]byte(key))
	return w.finish(i, err, func(op *model.Op) {
		op.RVal = append([]byte(nil), v...)
		op.RFlags = f
	})
}

func (w *mcWorker) doMGet(keys []string) bool {
	kbs := make([][]byte, len(keys))
	for i, k := range keys {
		kbs[i] = []byte(k)
	}
	inv := w.rec.Now()
	res, err := w.s.MGet(kbs)
	ret := w.rec.Now()
	_, completed := mcResult(err)
	for idx, k := range keys {
		op := model.Op{Kind: model.Get, Key: k, Invoke: inv, Now: w.now}
		if completed {
			op.Return = ret
			r := res[idx]
			if r.Found {
				op.Res = model.ResOK
				op.RVal = append([]byte(nil), r.Value...)
				op.RFlags = r.Flags
				op.RCAS = r.CAS
				w.lastCAS[k] = r.CAS
			} else {
				op.Res = model.ResNotFound
			}
		} // else: Return stays 0 -> pending
		w.tape.Record(op)
	}
	if !completed && !w.faulty {
		w.t.Errorf("worker %d: unexpected crash error: %v", w.id, err)
	}
	return completed
}

// doBatch runs a mixed ExecBatch — one gate crossing carrying several
// heterogeneous ops — and records every op under the batch's shared
// invoke/return window, exactly like doMGet. A crashed crossing leaves
// every op pending: the prefix before the crash committed, the suffix
// never ran, and the recorder cannot know where the cut fell.
func (w *mcWorker) doBatch(keys []string) bool {
	n := 2 + w.rng.Intn(4)
	bops := make([]core.BatchOp, n)
	mops := make([]model.Op, n)
	for i := range bops {
		key := w.pickGeneral(keys)
		switch w.rng.Intn(8) {
		case 0, 1:
			v := w.val()
			exp := w.exp()
			bops[i] = core.BatchOp{Code: core.BatchSet, Key: []byte(key), Value: v, Flags: uint32(w.id), Exptime: exp}
			mops[i] = model.Op{Kind: model.Set, Key: key, Val: v, Flags: uint32(w.id), Exp: exp}
		case 2:
			v := w.val()
			bops[i] = core.BatchOp{Code: core.BatchAdd, Key: []byte(key), Value: v, Flags: uint32(w.id)}
			mops[i] = model.Op{Kind: model.Add, Key: key, Val: v, Flags: uint32(w.id)}
		case 3:
			bops[i] = core.BatchOp{Code: core.BatchDelete, Key: []byte(key)}
			mops[i] = model.Op{Kind: model.Delete, Key: key}
		case 4:
			ck := mcCtrKeys[w.rng.Intn(len(mcCtrKeys))]
			d := uint64(1 + w.rng.Intn(3))
			bops[i] = core.BatchOp{Code: core.BatchIncr, Key: []byte(ck), Delta: d}
			mops[i] = model.Op{Kind: model.Incr, Key: ck, Delta: d}
		case 5:
			bops[i] = core.BatchOp{Code: core.BatchTouch, Key: []byte(key), Exptime: mcFarExpiry}
			mops[i] = model.Op{Kind: model.Touch, Key: key, Exp: mcFarExpiry}
		default:
			bops[i] = core.BatchOp{Code: core.BatchGet, Key: []byte(key)}
			mops[i] = model.Op{Kind: model.Get, Key: key}
		}
		mops[i].Now = w.now
	}
	inv := w.rec.Now()
	res, err := w.s.ExecBatch(bops)
	ret := w.rec.Now()
	_, completed := mcResult(err)
	for i := range mops {
		op := mops[i]
		op.Invoke = inv
		if completed {
			r, ok := mcResult(res[i].Err)
			if !ok {
				// Per-op errors are store verdicts; a crash error can only
				// arrive on the crossing itself.
				w.t.Errorf("worker %d: batch op %d carries a crash error: %v", w.id, i, res[i].Err)
			}
			op.Return = ret
			op.Res = r
			if r == model.ResOK {
				switch op.Kind {
				case model.Get:
					op.RVal = append([]byte(nil), res[i].Value...)
					op.RFlags = res[i].Flags
					op.RCAS = res[i].CAS
					w.lastCAS[op.Key] = res[i].CAS
				case model.Incr, model.Decr:
					op.RNum = res[i].Num
				}
			}
		} // else: Return stays 0 -> pending
		w.tape.Record(op)
	}
	if !completed && !w.faulty {
		w.t.Errorf("worker %d: unexpected batch crash: %v", w.id, err)
	}
	return completed
}

func (w *mcWorker) doStore(kind model.Kind, key string, val []byte, exp int64) bool {
	op := model.Op{Kind: kind, Key: key, Val: val, Flags: uint32(w.id), Exp: exp, Now: w.now}
	var casArg uint64
	if kind == model.CAS {
		if c, ok := w.lastCAS[key]; ok && w.rng.Intn(10) < 8 {
			casArg = c
		} else {
			casArg = 1<<60 + uint64(w.seq) // garbage: expect a mismatch
		}
		op.CASArg = casArg
	}
	i := w.tape.Begin(op)
	var err error
	switch kind {
	case model.Set:
		err = w.s.Set([]byte(key), val, uint32(w.id), exp)
	case model.Add:
		err = w.s.Add([]byte(key), val, uint32(w.id), exp)
	case model.Replace:
		err = w.s.Replace([]byte(key), val, uint32(w.id), exp)
	case model.CAS:
		err = w.s.CAS([]byte(key), val, uint32(w.id), exp, casArg)
	}
	return w.finish(i, err, nil)
}

func (w *mcWorker) doDelete(key string) bool {
	i := w.tape.Begin(model.Op{Kind: model.Delete, Key: key, Now: w.now})
	return w.finish(i, w.s.Delete([]byte(key)), nil)
}

func (w *mcWorker) doIncrDecr(key string, delta uint64, decr bool) bool {
	kind := model.Incr
	if decr {
		kind = model.Decr
	}
	i := w.tape.Begin(model.Op{Kind: kind, Key: key, Delta: delta, Now: w.now})
	var v uint64
	var err error
	if decr {
		v, err = w.s.Decrement([]byte(key), delta)
	} else {
		v, err = w.s.Increment([]byte(key), delta)
	}
	return w.finish(i, err, func(op *model.Op) { op.RNum = v })
}

func (w *mcWorker) doPend(key string, data []byte, prepend bool) bool {
	kind := model.Append
	if prepend {
		kind = model.Prepend
	}
	i := w.tape.Begin(model.Op{Kind: kind, Key: key, Val: data, Now: w.now})
	var err error
	if prepend {
		err = w.s.Prepend([]byte(key), data)
	} else {
		err = w.s.Append([]byte(key), data)
	}
	return w.finish(i, err, nil)
}

func (w *mcWorker) doTouch(key string, exp int64) bool {
	i := w.tape.Begin(model.Op{Kind: model.Touch, Key: key, Exp: exp, Now: w.now})
	return w.finish(i, w.s.Touch([]byte(key), exp), nil)
}

func (w *mcWorker) doGAT(key string, exp int64) bool {
	i := w.tape.Begin(model.Op{Kind: model.GAT, Key: key, Exp: exp, Now: w.now})
	v, f, err := w.s.GetAndTouch([]byte(key), exp)
	return w.finish(i, err, func(op *model.Op) {
		op.RVal = append([]byte(nil), v...)
		op.RFlags = f
	})
}

func (w *mcWorker) doFlush() bool {
	i := w.tape.Begin(model.Op{Kind: model.Flush, Now: w.now})
	return w.finish(i, w.s.FlushAll(), nil)
}

func mcGeneralKeys() []string {
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	return keys
}

var mcCtrKeys = []string{"c0", "c1", "c2", "c3"}

func (w *mcWorker) pickGeneral(keys []string) string { return keys[w.rng.Intn(len(keys))] }

// step runs one mixed op. allowFlush gates FlushAll (excluded for
// doomed clients: a killed flush would put a pending op into every
// key's subhistory). Returns false once the worker's process has died.
func (w *mcWorker) step(keys []string, allowFlush bool) bool {
	if w.rng.Intn(10) < 3 { // counter workload
		key := mcCtrKeys[w.rng.Intn(len(mcCtrKeys))]
		switch p := w.rng.Intn(100); {
		case p < 35:
			delta := uint64(1 + w.rng.Intn(3))
			switch w.rng.Intn(25) {
			case 0:
				delta = 10_000 // force a width-change rewrite
			case 1:
				delta = ^uint64(0) // wraps modulo 2^64
			}
			return w.doIncrDecr(key, delta, false)
		case p < 60:
			delta := uint64(1 + w.rng.Intn(3))
			if w.rng.Intn(8) == 0 {
				delta = 1 << 40 // saturates at zero
			}
			return w.doIncrDecr(key, delta, true)
		case p < 80:
			return w.doGets(key)
		default:
			return w.doStore(model.Set, key, []byte(fmt.Sprintf("%d", w.rng.Intn(100000))), 0)
		}
	}
	key := w.pickGeneral(keys)
	switch p := w.rng.Intn(100); {
	case p < 30:
		return w.doGets(key)
	case p < 40:
		n := 2 + w.rng.Intn(3)
		batch := make([]string, n)
		for i := range batch {
			batch[i] = w.pickGeneral(keys)
		}
		return w.doMGet(batch)
	case p < 58:
		return w.doStore(model.Set, key, w.val(), w.exp())
	case p < 63:
		return w.doStore(model.Add, key, w.val(), w.exp())
	case p < 68:
		return w.doStore(model.Replace, key, w.val(), w.exp())
	case p < 78:
		return w.doStore(model.CAS, key, w.val(), w.exp())
	case p < 84:
		return w.doDelete(key)
	case p < 88:
		return w.doPend(key, append([]byte("+"), w.val()...), false)
	case p < 92:
		return w.doPend(key, append([]byte("-"), w.val()...), true)
	case p < 95:
		return w.doTouch(key, mcFarExpiry)
	case p < 99:
		return w.doGAT(key, mcFarExpiry)
	default:
		if allowFlush && w.rng.Intn(8) == 0 {
			return w.doFlush()
		}
		return w.doGets(key)
	}
}

// readStep runs one read-only op (survivors during an armed crash
// window, where a mutation could consume the one-shot fault handler
// meant for the doomed client).
func (w *mcWorker) readStep(keys []string) bool {
	if w.rng.Intn(4) == 0 {
		n := 2 + w.rng.Intn(3)
		batch := make([]string, n)
		for i := range batch {
			batch[i] = w.pickGeneral(keys)
		}
		return w.doMGet(batch)
	}
	if w.rng.Intn(3) == 0 {
		return w.doGets(mcCtrKeys[w.rng.Intn(len(mcCtrKeys))])
	}
	return w.doGets(w.pickGeneral(keys))
}

// mcCheck runs the checker and fails the test on any violation or
// undecided key, logging the sizes the experiment log records.
func mcCheck(t *testing.T, hist []model.Op, m *model.Model) linearcheck.Result {
	t.Helper()
	start := time.Now()
	res := linearcheck.Check(hist, m, linearcheck.Options{})
	wall := time.Since(start)
	if !res.Ok {
		t.Fatalf("history not linearizable: %s", res.Violation)
	}
	if len(res.Undecided) > 0 {
		t.Fatalf("checker exceeded its state budget on keys %v", res.Undecided)
	}
	t.Logf("checked %d ops over %d keys (largest subhistory %d ops): %d model states, %v",
		res.Ops, res.Keys, res.MaxKeyOps, res.StatesExplored, wall)
	return res
}

// TestModelCheckMixed: the main crash-free torture run. 12 workers in 3
// client processes (3 shm views) run the full mixed workload; the
// merged history must linearize with zero violations.
func TestModelCheckMixed(t *testing.T) {
	opBudget := *modelcheckOps
	if testing.Short() {
		opBudget = 4000
	}
	const nProcs, perProc = 3, 4
	workers := nProcs * perProc

	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 64 << 20, HashPower: 8, NumItemLocks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.Store().SetClock(func() int64 { return mcFrozenNow })

	rec := linearcheck.NewRecorder(workers)
	var ws []*mcWorker
	for p := 0; p < nProcs; p++ {
		cp, err := book.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < perProc; s++ {
			sess, err := cp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, newMCWorker(t, sess, rec, len(ws), *modelcheckSeed, false))
		}
	}

	keys := mcGeneralKeys()
	perWorker := opBudget / workers
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *mcWorker) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if !w.step(keys, true) {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	hist := rec.History()
	if len(hist) < opBudget {
		t.Fatalf("recorded only %d ops, want >= %d", len(hist), opBudget)
	}
	mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen})
}

// TestModelCheckSharded: the mixed torture run against a 4-shard cluster.
// Every worker drives a ClusterSession, so each op crosses the placement
// ring before reaching a store, and MGet/ExecBatch windows span several
// per-shard crossings. The merged history must still linearize: the ring
// is deterministic and each key lives on exactly one shard, so per-key
// histories are exactly as strict as the single-store runs.
//
// FlushAll is excluded (allowFlush=false): a cluster flush sweeps shards
// sequentially, and a pair of writes to different shards straddling the
// sweep is a real, documented relaxation — not a routing bug. Hot-key
// replication stays off for the same reason (replica reads relax per-key
// linearizability by design).
func TestModelCheckSharded(t *testing.T) {
	opBudget := *modelcheckOps
	if testing.Short() {
		opBudget = 3000
	}
	const nShards, nProcs, perProc = 4, 2, 4
	workers := nProcs * perProc

	c, err := memcached.CreateCluster(memcached.ClusterConfig{
		Shards: nShards,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for i := 0; i < nShards; i++ {
		c.Shard(i).Store().SetClock(func() int64 { return mcFrozenNow })
	}

	rec := linearcheck.NewRecorder(workers)
	var ws []*mcWorker
	for p := 0; p < nProcs; p++ {
		cc, err := c.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < perProc; s++ {
			sess, err := cc.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, newMCWorker(t, sess, rec, len(ws), *modelcheckSeed, false))
		}
	}

	keys := mcGeneralKeys()
	perWorker := opBudget / workers
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *mcWorker) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ok := w.step(keys, false)
				if ok && w.rng.Intn(4) == 0 {
					ok = w.doBatch(keys) // sharded batch: split + reassembled
				}
				if !ok {
					w.t.Errorf("worker %d died", w.id)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every shard must have taken real traffic, or the run proves nothing
	// about cross-shard windows.
	for i := 0; i < nShards; i++ {
		st := c.Shard(i).Stats()
		if st.Gets+st.Sets == 0 {
			t.Fatalf("shard %d saw no traffic; ring routing is degenerate", i)
		}
	}

	hist := rec.History()
	if len(hist) < opBudget {
		t.Fatalf("recorded only %d ops, want >= %d", len(hist), opBudget)
	}
	mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen})
}

// TestModelCheckFaults: crash rounds. Each round arms one registered
// crash site on the client mutation paths, lets a doomed client step on
// it (killing its process mid-call), waits for online recovery, then
// runs a full-mix phase. Killed calls are recorded as pending ops and
// the model admits the repair drop contract; everything else must
// linearize exactly.
func TestModelCheckFaults(t *testing.T) {
	points := []string{
		"ops.store.after_alloc",
		"ops.store.locked",
		"ops.store.mid_swap",
		"ops.store.after_link",
		"lru.link.before_lru",
		"lru.unlink.before_lru",
	}
	// ops.incr.mid_rewrite is deliberately absent: a crash inside the
	// seqlock write section tears value-vs-CAS-generation, a known
	// relaxation pinned by TestModelCheckCrashTear below.
	if testing.Short() {
		points = points[:3]
	}
	defer faultpoint.DisarmAll()

	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 64 << 20, HashPower: 8, NumItemLocks: 16,
		CallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.Store().SetClock(func() int64 { return mcFrozenNow })

	const nSurv = 8
	rec := linearcheck.NewRecorder(nSurv + 2*len(points))
	var survivors []*mcWorker
	for p := 0; p < 2; p++ {
		cp, err := book.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < nSurv/2; s++ {
			sess, err := cp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			survivors = append(survivors, newMCWorker(t, sess, rec, len(survivors), *modelcheckSeed, true))
		}
	}
	keys := mcGeneralKeys()

	mixPhase := func(steps int) {
		var wg sync.WaitGroup
		for _, w := range survivors {
			wg.Add(1)
			go func(w *mcWorker) {
				defer wg.Done()
				for i := 0; i < steps; i++ {
					if !w.step(keys, false) {
						w.t.Errorf("survivor %d died", w.id)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	mixPhase(200) // populate

	for ri, point := range points {
		doomedProc, err := book.NewClientProcess(3000 + ri)
		if err != nil {
			t.Fatal(err)
		}
		var doomed []*mcWorker
		for j := 0; j < 2; j++ {
			sess, err := doomedProc.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			doomed = append(doomed, newMCWorker(t, sess, rec, nSurv+2*ri+j, *modelcheckSeed, true))
		}

		var fired atomic.Bool
		if err := faultpoint.Arm(point, func() {
			fired.Store(true)
			doomedProc.Kill()
			panic("modelcheck: injected crash at " + point)
		}); err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, w := range survivors {
			wg.Add(1)
			go func(w *mcWorker) {
				defer wg.Done()
				for i := 0; i < 400; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if !w.readStep(keys) {
						w.t.Errorf("survivor %d crashed on a read", w.id)
						return
					}
				}
			}(w)
		}
		for _, w := range doomed {
			wg.Add(1)
			go func(w *mcWorker) {
				defer wg.Done()
				for w.step(keys, false) {
				}
			}(w)
		}

		deadline := time.Now().Add(10 * time.Second)
		for !fired.Load() {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: workload never reached %s", ri, point)
			}
			time.Sleep(time.Millisecond)
		}
		for {
			if book.Library().Poisoned() {
				t.Fatalf("round %d: library poisoned after crash at %s", ri, point)
			}
			if m := book.Library().Metrics(); int(m.Recoveries) >= ri+1 && !book.Library().Recovering() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: no recovery after crash at %s", ri, point)
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
		wg.Wait()
		faultpoint.Disarm(point)

		mixPhase(200) // full mix against the repaired store
	}

	if _, err := book.Allocator().Check(); err != nil {
		t.Fatalf("heap fsck after fault rounds: %v", err)
	}
	hist := rec.History()
	if min := 10_000; !testing.Short() && len(hist) < min {
		t.Fatalf("recorded only %d ops, want >= %d", len(hist), min)
	}
	pending := 0
	for i := range hist {
		if hist[i].Pending {
			pending++
		}
	}
	t.Logf("fault history: %d ops, %d pending (killed mid-call)", len(hist), pending)
	mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen, CrashMayDrop: true})
}

// TestModelCheckBatched: batched histories. Every doBatch is one gate
// crossing carrying 2–5 heterogeneous ops that share an invoke/return
// window; batches interleave with ordinary single-op traffic from the
// same workers. One crash round arms ops.batch.mid_dispatch and kills a
// doomed client between two ops of its batch — the committed prefix and
// never-run suffix are both recorded pending, and the merged history
// must still linearize under the repair drop contract.
func TestModelCheckBatched(t *testing.T) {
	defer faultpoint.DisarmAll()
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 64 << 20, HashPower: 8, NumItemLocks: 16,
		CallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.Store().SetClock(func() int64 { return mcFrozenNow })

	const nSurv = 6
	rec := linearcheck.NewRecorder(nSurv + 2)
	var survivors []*mcWorker
	for p := 0; p < 2; p++ {
		cp, err := book.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < nSurv/2; s++ {
			sess, err := cp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			survivors = append(survivors, newMCWorker(t, sess, rec, len(survivors), *modelcheckSeed, true))
		}
	}
	keys := mcGeneralKeys()

	// Half batches, half ordinary ops: batched and single-op windows must
	// linearize against each other, not just among themselves.
	batchPhase := func(steps int) {
		var wg sync.WaitGroup
		for _, w := range survivors {
			wg.Add(1)
			go func(w *mcWorker) {
				defer wg.Done()
				for i := 0; i < steps; i++ {
					ok := w.step(keys, false)
					if w.rng.Intn(2) == 0 {
						ok = w.doBatch(keys)
					}
					if !ok {
						w.t.Errorf("survivor %d died", w.id)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	batchPhase(120) // populate: batches and singles against a live store

	// Crash round: doomed clients spin batches until one steps on the
	// mid-dispatch mine.
	doomedProc, err := book.NewClientProcess(3000)
	if err != nil {
		t.Fatal(err)
	}
	var doomed []*mcWorker
	for j := 0; j < 2; j++ {
		sess, err := doomedProc.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		doomed = append(doomed, newMCWorker(t, sess, rec, nSurv+j, *modelcheckSeed, true))
	}
	var fired atomic.Bool
	if err := faultpoint.Arm("ops.batch.mid_dispatch", func() {
		fired.Store(true)
		doomedProc.Kill()
		panic("modelcheck: injected crash at ops.batch.mid_dispatch")
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range survivors {
		wg.Add(1)
		go func(w *mcWorker) {
			defer wg.Done()
			// Single gets only while the point is armed: a survivor batch
			// (even MGet) would consume the one-shot handler meant for the
			// doomed client.
			for i := 0; i < 400; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if !w.doGets(w.pickGeneral(keys)) {
					w.t.Errorf("survivor %d crashed on a read", w.id)
					return
				}
			}
		}(w)
	}
	for _, w := range doomed {
		wg.Add(1)
		go func(w *mcWorker) {
			defer wg.Done()
			for w.doBatch(keys) {
			}
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("doomed batches never reached ops.batch.mid_dispatch")
		}
		time.Sleep(time.Millisecond)
	}
	for {
		if book.Library().Poisoned() {
			t.Fatal("library poisoned after mid-batch crash")
		}
		if m := book.Library().Metrics(); m.Recoveries >= 1 && !book.Library().Recovering() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no recovery after mid-batch crash")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	faultpoint.Disarm("ops.batch.mid_dispatch")

	batchPhase(120) // full batched mix against the repaired store

	if _, err := book.Allocator().Check(); err != nil {
		t.Fatalf("heap fsck after mid-batch crash: %v", err)
	}
	hist := rec.History()
	pending := 0
	for i := range hist {
		if hist[i].Pending {
			pending++
		}
	}
	if pending == 0 {
		t.Fatal("mid-batch crash left no pending ops in the history")
	}
	t.Logf("batched history: %d ops, %d pending (killed mid-batch)", len(hist), pending)
	mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen, CrashMayDrop: true})
}

// TestModelCheckSeededViolation: the self-test the harness demands. The
// writer's in-place increment runs with UnsafeIncrSkipSeqlock — no
// seqlock bracket, value written in two halves around a yield — while
// readers run the ordinary optimistic Get fast path from a different
// shm view. The checker must flag the resulting torn reads and shrink
// the history to a minimal witness. Readers record no CAS generations,
// so detection must come from the Wing&Gong search, not the cheap
// generation-uniqueness pre-pass.
func TestModelCheckSeededViolation(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.Store().SetClock(func() int64 { return mcFrozenNow })

	wp, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	wsess, err := wp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	wsess.Ctx().UnsafeIncrSkipSeqlock = true
	rp, err := book.NewClientProcess(1002) // readers: separate shm view
	if err != nil {
		t.Fatal(err)
	}
	const nReaders = 3
	var rsess []*memcached.Session
	for i := 0; i < nReaders; i++ {
		s, err := rp.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		rsess = append(rsess, s)
	}

	const key = "ctr"
	for round := 0; round < 50; round++ {
		rec := linearcheck.NewRecorder(1 + nReaders)
		writer := newMCWorker(t, wsess, rec, 0, *modelcheckSeed, false)
		if !writer.doStore(model.Set, key, []byte("10000000"), 0) {
			t.Fatal("seed set failed")
		}
		var wg sync.WaitGroup
		done := make(chan struct{})
		for i := 0; i < nReaders; i++ {
			r := newMCWorker(t, rsess[i], rec, 1+i, *modelcheckSeed+int64(round), false)
			wg.Add(1)
			go func(r *mcWorker) {
				defer wg.Done()
				// Bounded: an unbounded spin makes the single-key
				// subhistory (and the checker's memo keys, which carry a
				// bitset of it) arbitrarily large.
				for i := 0; i < 1500; i++ {
					select {
					case <-done:
						return
					default:
					}
					r.doGet(key) // no CAS observation: force the search path
				}
			}(r)
		}
		// +5000 each step: every other increment carries into the upper
		// half of the 8-digit value, so a torn read mixes the halves.
		for i := 0; i < 400; i++ {
			if !writer.doIncrDecr(key, 5000, false) {
				t.Fatal("incr failed")
			}
		}
		close(done)
		wg.Wait()

		hist := rec.History()
		res := linearcheck.Check(hist, &model.Model{MaxValueLen: core.MaxValueLen},
			linearcheck.Options{MaxStates: 1 << 20})
		if res.Ok {
			continue // no torn read surfaced this round; rerun
		}
		if len(res.Undecided) > 0 {
			t.Fatalf("checker ran out of budget on the seeded round (%d ops)", len(hist))
		}
		if res.Key != key {
			t.Fatalf("violation on unexpected key %q: %s", res.Key, res.Violation)
		}
		if len(res.Witness) < 1 || len(res.Witness) > 8 {
			t.Fatalf("witness not shrunk to a minimal core (%d ops of %d):\n%s",
				len(res.Witness), len(hist), linearcheck.FormatOps(res.Witness))
		}
		hasRead := false
		for _, op := range res.Witness {
			if op.Kind == model.Get {
				hasRead = true
			}
		}
		if !hasRead {
			t.Fatalf("witness lacks the torn read:\n%s", linearcheck.FormatOps(res.Witness))
		}
		t.Logf("round %d: seeded violation caught; %d-op history shrunk to %d-op witness:\n%s",
			round, len(hist), len(res.Witness), linearcheck.FormatOps(res.Witness))
		return
	}
	t.Fatal("mutation mode never produced a detectable violation in 50 rounds")
}

// TestModelCheckCrashTear pins a known crash-semantics relaxation the
// checker discovered: a crash between the in-place increment's value
// write and its CAS bump (ops.incr.mid_rewrite) leaves the NEW value
// readable under the OLD generation. The generation-uniqueness pre-pass
// must flag the resulting history deterministically. If incrDecr ever
// journals the pair atomically, this test should start failing — then
// the point can join TestModelCheckFaults' rotation.
func TestModelCheckCrashTear(t *testing.T) {
	defer faultpoint.DisarmAll()
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
		CallTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.Store().SetClock(func() int64 { return mcFrozenNow })

	sp, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	ssess, err := sp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	dp, err := book.NewClientProcess(1002)
	if err != nil {
		t.Fatal(err)
	}
	dsess, err := dp.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	rec := linearcheck.NewRecorder(2)
	surv := newMCWorker(t, ssess, rec, 0, 1, false)
	doomed := newMCWorker(t, dsess, rec, 1, 1, true)

	const key = "ctr"
	if !surv.doStore(model.Set, key, []byte("100"), 0) || !surv.doGets(key) {
		t.Fatal("setup failed")
	}
	if err := faultpoint.Arm("ops.incr.mid_rewrite", func() {
		dp.Kill()
		panic("modelcheck: injected crash at ops.incr.mid_rewrite")
	}); err != nil {
		t.Fatal(err)
	}
	if doomed.doIncrDecr(key, 1, false) {
		t.Fatal("doomed increment completed; fault point did not fire")
	}
	deadline := time.Now().Add(10 * time.Second)
	for book.Library().Recovering() || func() bool { m := book.Library().Metrics(); return m.Recoveries < 1 }() {
		if book.Library().Poisoned() {
			t.Fatal("library poisoned")
		}
		if time.Now().After(deadline) {
			t.Fatal("no recovery after injected crash")
		}
		time.Sleep(time.Millisecond)
	}
	if !surv.doGets(key) {
		t.Fatal("post-recovery read failed")
	}

	res := linearcheck.Check(rec.History(),
		&model.Model{MaxValueLen: core.MaxValueLen, CrashMayDrop: true}, linearcheck.Options{})
	if res.Ok {
		t.Fatal("crash tear not detected: value/generation pair survived the crash " +
			"intact — if incrDecr now updates them atomically, move ops.incr.mid_rewrite " +
			"into TestModelCheckFaults")
	}
	if !strings.Contains(res.Violation, "cas generation") {
		t.Fatalf("expected a generation-uniqueness violation, got: %s", res.Violation)
	}
	t.Logf("crash tear detected as expected: %s", res.Violation)
}

// TestModelCheckExpiryHistory replays a deterministic clock-stepped
// history through the real session paths, pinning the model's expiry,
// saturation, wrap, and numeric-rejection semantics against the
// implementation's.
func TestModelCheckExpiryHistory(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()

	cp, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	var now atomic.Int64
	now.Store(mcFrozenNow)
	sess.Ctx().Store().SetClock(now.Load)
	book.Store().SetClock(now.Load)

	rec := linearcheck.NewRecorder(1)
	w := newMCWorker(t, sess, rec, 0, 1, false)
	sess.Ctx().Store().SetClock(now.Load) // newMCWorker froze it; re-point
	step := func(d int64) {
		now.Add(d)
		w.now = now.Load()
	}
	w.now = now.Load()

	// setRel stores with a RELATIVE exptime but records the absolute
	// deadline the model needs.
	setRel := func(key, val string, rel int64) bool {
		i := w.tape.Begin(model.Op{Kind: model.Set, Key: key, Val: []byte(val),
			Flags: uint32(w.id), Exp: w.now + rel, Now: w.now})
		return w.finish(i, w.s.Set([]byte(key), []byte(val), uint32(w.id), rel), nil)
	}
	gatRel := func(key string, rel int64) bool {
		i := w.tape.Begin(model.Op{Kind: model.GAT, Key: key, Exp: w.now + rel, Now: w.now})
		v, f, err := w.s.GetAndTouch([]byte(key), rel)
		return w.finish(i, err, func(op *model.Op) {
			op.RVal = append([]byte(nil), v...)
			op.RFlags = f
		})
	}
	touchRel := func(key string, rel int64) bool {
		i := w.tape.Begin(model.Op{Kind: model.Touch, Key: key, Exp: w.now + rel, Now: w.now})
		return w.finish(i, w.s.Touch([]byte(key), rel), nil)
	}

	ok := setRel("k1", "v1", 50) && w.doGets("k1")
	step(49)
	ok = ok && w.doGets("k1") // one second before the deadline: a hit
	step(1)
	ok = ok && w.doGets("k1") // at the deadline: lazily reaped miss
	// Expired-but-unreaped corpses answer NOT_FOUND on every mutation op.
	ok = ok && setRel("c1", "7", 30) && setRel("k2", "abc", 30)
	step(40)
	ok = ok && w.doIncrDecr("c1", 1, false) && w.doIncrDecr("c1", 1, true)
	ok = ok && w.doPend("k2", []byte("x"), false) && w.doPend("k2", []byte("y"), true)
	// Touch/GAT move deadlines; the old deadline stops mattering.
	ok = ok && setRel("k3", "g", 50)
	step(40)
	ok = ok && gatRel("k3", 100)
	step(80) // past the original deadline, before the new one
	ok = ok && w.doGets("k3") && touchRel("k3", 10)
	step(30)
	ok = ok && w.doGets("k3") // the touched deadline passed: a miss
	ok = ok && touchRel("k3", 10)
	// Saturation, wrap, and numeric rejection through the real paths.
	ok = ok && w.doStore(model.Set, "c2", []byte("18446744073709551615"), 0)
	ok = ok && w.doIncrDecr("c2", 1, false) // wraps to 0
	ok = ok && w.doIncrDecr("c2", 5, true)  // saturates at 0
	ok = ok && w.doStore(model.Set, "c3", []byte("xyz"), 0)
	ok = ok && w.doIncrDecr("c3", 1, false)
	ok = ok && w.doStore(model.Set, "c4", []byte("18446744073709551616"), 0)
	ok = ok && w.doIncrDecr("c4", 1, false) // 2^64: not numeric
	ok = ok && w.doFlush() && w.doGets("c2")
	if !ok {
		t.Fatal("a session call crashed during the scripted history")
	}
	mcCheck(t, rec.History(), &model.Model{MaxValueLen: core.MaxValueLen})
}
