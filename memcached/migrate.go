package memcached

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/internal/ring"
)

// Live resharding (ISSUE 9 tentpole). Resize(newShards) computes the
// ring.Plan between the current and target rings and streams exactly the
// moved hash segments between shards in the background, while clients
// keep serving. The protocol, per segment:
//
//  1. Walk the source shard (one ForEach pass per source, shared across
//     that source's pending segments) and collect the keys hashing into
//     the segment.
//  2. Bulk-copy them in batches: a BatchExport sub-batch on the source
//     (one gate crossing, no LRU rejuvenation, absolute expiry carried
//     along) feeds a BatchInstall sub-batch on the destination (one
//     crossing, CAS generation preserved verbatim — shard-disjoint CAS
//     spaces make the source's generations safe to replay there).
//  3. Cut over under the segment's write lock: writes that landed on the
//     source since routing became migration-aware were dirty-marked at
//     route time, and are re-copied (or re-deleted) here while no client
//     op can hold the segment. Setting done flips the segment's routing
//     to the destination before the lock releases.
//
// Routing during all of this is dual-ring: a key in an uncut segment
// goes to the segment's source *while holding the segment guard in
// shared mode*, a key in a cut segment goes to its destination, and a
// key outside the plan goes where both rings agree. So an existing key
// never misses: it is always fully present on whichever side routing
// currently picks.
//
// The migrator runs as client-grade work: its export/install batches
// cross the gate through ordinary sessions, so a migrator crash — the
// migrate.mid_segment fault point between batches, or a crash inside a
// crossing — is survived exactly like any client crash. Both shards
// repair online, the attempt's processes are abandoned, and a fresh
// attempt re-walks the pending segments (done segments stay done;
// re-copying a partially copied segment is idempotent because Install
// overwrites and cutover reconciles deletes).

// fpMigrateMidSegment fires between copy batches of a segment — after
// some of its keys have been installed on the destination but before the
// segment cuts over. The crash-isolation tier arms it to kill the
// migrator at the worst possible moment and prove both shards stay
// healthy and the migration is restartable.
var fpMigrateMidSegment = faultpoint.New("migrate.mid_segment")

// ErrResizeInProgress is returned by Resize while a migration is live.
var ErrResizeInProgress = errors.New("memcached: a resize is already in progress")

// errMigrationParked marks a migration stopped by Shutdown: the reshard
// marker stays on disk so the next OpenCluster sweeps strays.
var errMigrationParked = errors.New("memcached: migration parked by shutdown")

const (
	// migBatchSize keys per export/install crossing pair.
	migBatchSize = 64
	// migMaxAttempts bounds restart-after-crash before the resize aborts.
	migMaxAttempts = 5
	// migUID is the migrator's client uid.
	migUID = 0x4D16
)

// migOwnerSeq mints lock-owner tokens for the migrator's direct contexts
// (segment walks, purge sweeps), in a space disjoint from local sessions
// (pid<<20), the proxy (1<<41) and the hybrid server.
var migOwnerSeq atomic.Uint64

func migOwner() uint64 { return uint64(1)<<42 | migOwnerSeq.Add(1) }

// migSeg is one plan segment's migration state. The RWMutex is the
// routing guard: client ops touching the segment hold it shared for the
// duration of their shard access; cutover holds it exclusively while it
// re-copies the dirty set and flips done. dirty collects keys written on
// the source since the migration started — marked at route time, before
// the write executes, so a mark is always conservative.
type migSeg struct {
	seg ring.Segment

	mu   sync.RWMutex
	done bool // guarded by mu; true once routing flipped to seg.To

	doneA atomic.Bool // mirror of done for lock-free progress reads

	dmu   sync.Mutex
	dirty map[string]struct{}
}

func (s *migSeg) release() { s.mu.RUnlock() }

// markDirty records a source-side write for the pre-cutover recopy.
// Never cleared before cutover, and no new marks can arrive after (done
// flips under the exclusive lock while every marker holds the shared
// one).
func (s *migSeg) markDirty(key []byte) {
	s.dmu.Lock()
	s.dirty[string(key)] = struct{}{}
	s.dmu.Unlock()
}

// migration is one live resize: the two rings, the plan, and the
// migrator's restartable state.
type migration struct {
	c        *Cluster
	from, to *ring.Ring
	segs     []*migSeg

	// Sorted segment index for segFor: order holds indices into segs
	// sorted by Start, starts the matching Start values; wrapped is the
	// index of the (single possible) Start >= End segment, or -1.
	order   []int
	starts  []uint64
	wrapped int

	stopped atomic.Bool
	err     error // terminal outcome; set before finished closes
	finished chan struct{}

	cliMu sync.Mutex
	cli   *migClient // current attempt's processes, for KillMigrator
}

func (m *migration) segmentsDone() int {
	n := 0
	for _, s := range m.segs {
		if s.doneA.Load() {
			n++
		}
	}
	return n
}

// segFor maps a hash position to its plan segment index, or -1 when both
// rings agree on it. Binary search over the disjoint segments sorted by
// Start; at most one segment can wrap past the top of the circle, checked
// separately.
func (m *migration) segFor(h uint64) int {
	// Last segment with Start < h: Contains is exclusive at Start, so a
	// segment starting exactly at h cannot hold it.
	i := sort.Search(len(m.starts), func(i int) bool { return m.starts[i] >= h }) - 1
	if i >= 0 && m.segs[m.order[i]].seg.Contains(h) {
		return m.order[i]
	}
	if m.wrapped >= 0 && m.segs[m.wrapped].seg.Contains(h) {
		return m.wrapped
	}
	return -1
}

func (m *migration) buildIndex() {
	m.wrapped = -1
	for i, s := range m.segs {
		if s.seg.Start >= s.seg.End {
			m.wrapped = i
			continue
		}
		m.order = append(m.order, i)
	}
	sort.Slice(m.order, func(a, b int) bool {
		return m.segs[m.order[a]].seg.Start < m.segs[m.order[b]].seg.Start
	})
	m.starts = make([]uint64, len(m.order))
	for i, idx := range m.order {
		m.starts[i] = m.segs[idx].seg.Start
	}
}

// routeKey resolves one key under the dual-ring rules. A non-nil guard is
// the key's mid-migration segment, held shared; the caller must release
// it after its shard access retires (and markDirty first, for writes).
func (c *Cluster) routeKey(key []byte) (int, *migSeg) {
	return c.routeHash(ring.Hash(key), nil)
}

// routeHash is the routing core: old ring unless the hash's segment has
// cut over.
//
// With no live migration the authoritative ring decides alone. During
// one, a hash inside an uncut plan segment routes to the segment's
// source with the shared guard held — the cutover takes the guard
// exclusively, so an op holding it can never interleave with the final
// recopy — and to the destination the moment done is set. A hash outside
// the plan goes where both rings agree.
//
// held, when non-nil, is a batch's already-held guard set: a guard in it
// is not re-acquired (a second RLock on the same mutex can deadlock
// against a writer queued between the two) but is still returned so the
// op can dirty-mark. Callers passing held own membership bookkeeping and
// release; single-key callers (held == nil) release the returned guard.
func (c *Cluster) routeHash(h uint64, held map[*migSeg]struct{}) (int, *migSeg) {
	m := c.mig.Load()
	if m == nil {
		return c.top().ring.Owner(h), nil
	}
	i := m.segFor(h)
	if i < 0 {
		return m.from.Owner(h), nil
	}
	s := m.segs[i]
	if held != nil {
		if _, ok := held[s]; ok {
			// Still in the pre-cutover state: done cannot flip while this
			// batch holds the shared lock.
			return s.seg.From, s
		}
	}
	s.mu.RLock()
	if s.done {
		s.mu.RUnlock()
		return s.seg.To, nil
	}
	return s.seg.From, s
}

// Resize rebalances the cluster to newShards shards, live. New shards (on
// grow) are created and attached immediately; the keyspace then migrates
// in the background and the authoritative ring advances only when every
// moved segment has cut over. Shrink migrates the dying shards' keyspace
// onto the survivors and leaves the drained shards attached (and empty)
// until Shutdown. Returns once the migration is underway; WaitResize or
// MigrationStatus observe completion. One resize runs at a time.
func (c *Cluster) Resize(newShards int) error {
	if newShards < 1 {
		return fmt.Errorf("memcached: resize to %d shards", newShards)
	}
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	if c.mig.Load() != nil {
		return ErrResizeInProgress
	}
	top := c.top()
	if newShards == top.ring.Shards() {
		return nil
	}
	to, err := ring.New(newShards, top.ring.VirtualNodes())
	if err != nil {
		return err
	}
	shards := append([]*Bookkeeper(nil), top.shards...)
	var created []*Bookkeeper
	for len(shards) < newShards {
		i := len(shards)
		b, err := CreateStore(c.cfg.shardConfig(i))
		if err != nil {
			for _, nb := range created {
				nb.Shutdown() //nolint:errcheck
			}
			return fmt.Errorf("memcached: shard %d: %w", i, err)
		}
		c.cfg.setupShard(b, i)
		shards = append(shards, b)
		created = append(created, b)
	}
	plan := ring.Plan(top.ring, to)
	m := &migration{c: c, from: top.ring, to: to, finished: make(chan struct{})}
	m.segs = make([]*migSeg, len(plan))
	for i := range plan {
		m.segs[i] = &migSeg{seg: plan[i], dirty: make(map[string]struct{})}
	}
	m.buildIndex()
	if c.cfg.Dir != "" {
		if err := writeReshardMarker(c.cfg.Dir, top.ring.Shards(), newShards); err != nil {
			for _, nb := range created {
				nb.Shutdown() //nolint:errcheck
			}
			return err
		}
	}
	// The write barrier: no client op may straddle the moment the
	// dual-ring rules take effect. Every op holds routeMu shared for its
	// whole route-and-access span, so once this exclusive section ends,
	// every in-flight op predates the migration (and saw the old single
	// ring, which stays authoritative until its segment cuts over) and
	// every later op sees it.
	newTop := &topology{ring: top.ring, shards: shards, hot: c.cfg.newTrackers(len(shards))}
	c.routeMu.Lock()
	c.topo.Store(newTop)
	c.mig.Store(m)
	c.routeMu.Unlock()
	c.lastMig.Store(m)
	c.resizes.Add(1)
	go m.run()
	return nil
}

// WaitResize blocks until the most recent Resize's migration reaches a
// terminal state and returns its outcome (nil on a completed cutover).
func (c *Cluster) WaitResize(timeout time.Duration) error {
	m := c.lastMig.Load()
	if m == nil {
		return nil
	}
	select {
	case <-m.finished:
		return m.err
	case <-time.After(timeout):
		return fmt.Errorf("memcached: resize still running after %v", timeout)
	}
}

// MigrationStatus is the admin-plane view of the most recent resize.
type MigrationStatus struct {
	Active        bool   `json:"active"`
	FromShards    int    `json:"from_shards"`
	ToShards      int    `json:"to_shards"`
	SegmentsTotal int    `json:"segments_total"`
	SegmentsDone  int    `json:"segments_done"`
	KeysMoved     uint64 `json:"keys_moved"`
	Retries       uint64 `json:"retries"`
	Error         string `json:"error,omitempty"`
}

// MigrationStatus reports the most recent resize's progress (zero value
// if none was ever started).
func (c *Cluster) MigrationStatus() MigrationStatus {
	m := c.lastMig.Load()
	if m == nil {
		return MigrationStatus{}
	}
	st := MigrationStatus{
		FromShards:    m.from.Shards(),
		ToShards:      m.to.Shards(),
		SegmentsTotal: len(m.segs),
		SegmentsDone:  m.segmentsDone(),
		KeysMoved:     c.keysMoved.Load(),
		Retries:       c.migRetries.Load(),
	}
	select {
	case <-m.finished:
		if m.err != nil {
			st.Error = m.err.Error()
		}
	default:
		st.Active = true
	}
	return st
}

// KillMigrator kills the current migration attempt's client processes —
// the simulated mid-flight death of the migrator (crash-isolation tier;
// typically armed behind the migrate.mid_segment fault point). The
// migration itself survives: the attempt fails, both shards repair if the
// kill landed inside a crossing, and a fresh attempt resumes the pending
// segments.
func (c *Cluster) KillMigrator() {
	m := c.mig.Load()
	if m == nil {
		return
	}
	m.cliMu.Lock()
	if m.cli != nil {
		m.cli.cc.Kill()
	}
	m.cliMu.Unlock()
}

// migClient is one migration attempt's client identity: a ClusterClient
// (so lazily-added shards attach the normal way) plus one session per
// shard it has touched.
type migClient struct {
	cc   *ClusterClient
	sess map[int]*Session
}

func newMigClient(c *Cluster) (*migClient, error) {
	cc, err := c.NewClientProcess(migUID)
	if err != nil {
		return nil, err
	}
	return &migClient{cc: cc, sess: make(map[int]*Session)}, nil
}

func (mc *migClient) session(shard int) (*Session, error) {
	if s, ok := mc.sess[shard]; ok {
		return s, nil
	}
	cp, err := mc.cc.proc(shard)
	if err != nil {
		return nil, err
	}
	s, err := cp.NewSession()
	if err != nil {
		return nil, err
	}
	mc.sess[shard] = s
	return s, nil
}

func (mc *migClient) close() {
	for _, s := range mc.sess {
		s.Close() // kill-safe: dead sessions defer teardown to recovery
	}
}

// run is the migrator goroutine: replica sweep, then bounded attempts,
// then a terminal finish/abort/park.
func (m *migration) run() {
	// Drop every hot-key replica before any byte moves. Replica serving
	// and creation are suspended while mig != nil and the trackers were
	// reset at Resize, so after this sweep each key's value lives only on
	// its authoritative shard — the copy protocol owns everything that
	// moves, and a stale replica can never be mistaken for a migrated
	// primary on its new owner. Must precede the first cutover: the sweep
	// judges placement by the old ring, which only stays true of every
	// key until routing starts flipping segments.
	m.c.purgeRing(m.from)

	var lastErr error
	for attempt := 0; attempt < migMaxAttempts; attempt++ {
		if m.stopped.Load() {
			m.park(errMigrationParked)
			return
		}
		if attempt > 0 {
			m.c.migRetries.Add(1)
			if err := m.waitHealthy(); err != nil {
				lastErr = err
				break
			}
		}
		err := m.attempt()
		if err == nil {
			m.finish()
			return
		}
		lastErr = err
		if m.stopped.Load() {
			m.park(err)
			return
		}
	}
	m.abort(fmt.Errorf("memcached: migration failed after %d attempts: %w", migMaxAttempts, lastErr))
}

// attempt copies and cuts over every pending segment with a fresh client
// identity. Any panic out of the copy machinery (fault points, killed-
// process paths) is contained here: the attempt fails, the migration —
// and both shards — survive.
func (m *migration) attempt() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("memcached: migrator crashed: %v", r)
		}
	}()
	cli, err := newMigClient(m.c)
	if err != nil {
		return err
	}
	m.cliMu.Lock()
	m.cli = cli
	m.cliMu.Unlock()
	defer func() {
		m.cliMu.Lock()
		m.cli = nil
		m.cliMu.Unlock()
		cli.close()
	}()
	// One walk per source shard covers all its pending segments.
	bySrc := make(map[int][]int)
	var srcs []int
	for i, s := range m.segs {
		if s.doneA.Load() {
			continue
		}
		if len(bySrc[s.seg.From]) == 0 {
			srcs = append(srcs, s.seg.From)
		}
		bySrc[s.seg.From] = append(bySrc[s.seg.From], i)
	}
	sort.Ints(srcs)
	for _, src := range srcs {
		keysBySeg := m.collectKeys(src)
		for _, si := range bySrc[src] {
			if m.stopped.Load() {
				return errMigrationParked
			}
			if err := m.copySegment(cli, m.segs[si], keysBySeg[si]); err != nil {
				return fmt.Errorf("segment %d: %w", si, err)
			}
		}
	}
	return nil
}

// collectKeys walks source shard src once and buckets every key belonging
// to one of its pending segments. Keys written after the walk are covered
// by the dirty set; keys deleted after it surface as export misses.
func (m *migration) collectKeys(src int) map[int][][]byte {
	out := make(map[int][][]byte)
	ctx := m.c.top().shards[src].Store().NewCtx(migOwner())
	defer ctx.Close()
	ctx.ForEach(func(e *core.Entry) bool {
		i := m.segFor(ring.Hash(e.Key))
		if i >= 0 && m.segs[i].seg.From == src && !m.segs[i].doneA.Load() {
			out[i] = append(out[i], append([]byte(nil), e.Key...))
		}
		return true
	})
	return out
}

// copySegment bulk-copies keys (collected by the walk) source→destination
// and then cuts the segment over.
func (m *migration) copySegment(cli *migClient, s *migSeg, keys [][]byte) error {
	from, err := cli.session(s.seg.From)
	if err != nil {
		return err
	}
	to, err := cli.session(s.seg.To)
	if err != nil {
		return err
	}
	for off := 0; off < len(keys); off += migBatchSize {
		if off > 0 {
			fpMigrateMidSegment.Maybe()
		}
		if m.stopped.Load() {
			return errMigrationParked
		}
		end := off + migBatchSize
		if end > len(keys) {
			end = len(keys)
		}
		if err := m.copyBatch(from, to, keys[off:end], false); err != nil {
			return err
		}
	}
	if len(keys) > 0 {
		// The canonical mid-segment moment: data copied, cutover pending.
		fpMigrateMidSegment.Maybe()
	}
	return m.cutover(from, to, s)
}

// copyBatch moves one batch: export on the source (one crossing), install
// on the destination (one crossing). Export misses are keys deleted since
// the walk; in recopy mode (the dirty set at cutover) a miss means the
// source-side write was a delete, which must propagate as a delete.
func (m *migration) copyBatch(from, to *Session, keys [][]byte, recopy bool) error {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Code: core.BatchExport, Key: k}
	}
	res, err := from.ExecBatch(ops)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	ins := make([]BatchOp, 0, len(keys))
	for i := range res {
		switch {
		case res[i].Err == nil:
			ins = append(ins, BatchOp{
				Code:    core.BatchInstall,
				Key:     keys[i],
				Value:   res[i].Value,
				Flags:   res[i].Flags,
				Exptime: res[i].Exptime,
				CAS:     res[i].CAS,
			})
		case errors.Is(res[i].Err, ErrNotFound) && recopy:
			ins = append(ins, BatchOp{Code: core.BatchDelete, Key: keys[i]})
		case errors.Is(res[i].Err, ErrNotFound):
			// Deleted since the walk; the dirty set owns it now.
		default:
			return fmt.Errorf("export %q: %w", keys[i], res[i].Err)
		}
	}
	if len(ins) == 0 {
		return nil
	}
	ires, err := to.ExecBatch(ins)
	if err != nil {
		return fmt.Errorf("install: %w", err)
	}
	moved := uint64(0)
	for i := range ires {
		if ires[i].Err == nil {
			if ins[i].Code == core.BatchInstall {
				moved++
			}
			continue
		}
		if ins[i].Code == core.BatchDelete && errors.Is(ires[i].Err, ErrNotFound) {
			continue // deleting a never-copied key
		}
		return fmt.Errorf("install %q: %w", ins[i].Key, ires[i].Err)
	}
	m.c.keysMoved.Add(moved)
	return nil
}

// cutover flips one segment to its destination. Under the exclusive
// guard — no client op can be touching the segment — it re-copies the
// dirty set (writes that landed on the source mid-copy; export misses
// propagate as deletes) and sets done, atomically switching routing for
// the segment's whole arc. The deferred unlock keeps both shards
// reachable even if the recopy crashes: the segment simply stays uncut
// and the next attempt redoes it.
func (m *migration) cutover(from, to *Session, s *migSeg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dmu.Lock()
	dirty := make([][]byte, 0, len(s.dirty))
	for k := range s.dirty {
		dirty = append(dirty, []byte(k))
	}
	s.dmu.Unlock()
	for off := 0; off < len(dirty); off += migBatchSize {
		end := off + migBatchSize
		if end > len(dirty) {
			end = len(dirty)
		}
		if err := m.copyBatch(from, to, dirty[off:end], true); err != nil {
			return err
		}
	}
	s.done = true
	s.doneA.Store(true)
	m.c.segsMoved.Add(1)
	return nil
}

// finish installs the target ring. Order matters: the topology swap (new
// ring, fresh hot trackers) happens before mig clears, so routing is
// never without a rule set; the manifest advances before the purge, so a
// crash mid-purge reopens onto the new ring with the marker still there
// to finish the sweep; the purge deletes every moved key's source copy
// (and is the reason the swap must come first — after it, no route
// reaches a source for a moved key).
func (m *migration) finish() {
	c := m.c
	top := c.top()
	c.topo.Store(&topology{ring: m.to, shards: top.shards, hot: c.cfg.newTrackers(len(top.shards))})
	if c.cfg.Dir != "" {
		if err := writeRingManifest(c.cfg.Dir, m.to.Shards(), m.to.VirtualNodes()); err != nil {
			// Keep serving on the new ring; the stale manifest plus marker
			// still reopen safely (old placement, swept strays).
			c.mig.Store(nil)
			m.err = err
			close(m.finished)
			return
		}
	}
	c.mig.Store(nil)
	c.purgeStale()
	if c.cfg.Dir != "" {
		removeReshardMarker(c.cfg.Dir)
	}
	m.err = nil
	close(m.finished)
}

// abort reverts to the old ring after repeated attempt failures: the
// sources never lost a byte, so clearing mig restores exact pre-resize
// routing, and the purge (old ring) deletes whatever partial copies
// landed on the destinations.
func (m *migration) abort(err error) {
	c := m.c
	c.mig.Store(nil)
	c.purgeStale()
	if c.cfg.Dir != "" {
		removeReshardMarker(c.cfg.Dir)
	}
	m.err = err
	close(m.finished)
}

// park stops without cleanup (Shutdown): the marker stays so the next
// OpenCluster sweeps, and the caller is about to flush every shard.
func (m *migration) park(err error) {
	m.c.mig.Store(nil)
	m.err = err
	close(m.finished)
}

// waitHealthy blocks until every shard's library is out of repair, so a
// fresh attempt doesn't immediately impale itself on a poisoned gate.
func (m *migration) waitHealthy() error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		healthy := true
		for _, b := range m.c.top().shards {
			lib := b.Library()
			if lib.Poisoned() || lib.Recovering() {
				healthy = false
				break
			}
		}
		if healthy {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("memcached: shards still unhealthy after %v", 30*time.Second)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// purgeStale sweeps every shard against the current authoritative ring,
// deleting entries the ring does not place where they sit: moved keys'
// source copies after a completed migration, partial destination copies
// after an aborted one, hot-key replicas either way.
func (c *Cluster) purgeStale() { c.purgeRing(c.top().ring) }

func (c *Cluster) purgeRing(r *ring.Ring) {
	for i, b := range c.top().shards {
		purgeShard(b, r, i)
	}
}

func purgeShard(b *Bookkeeper, r *ring.Ring, self int) {
	ctx := b.Store().NewCtx(migOwner())
	defer ctx.Close()
	var doomed [][]byte
	ctx.ForEach(func(e *core.Entry) bool {
		if r.Owner(ring.Hash(e.Key)) != self {
			doomed = append(doomed, append([]byte(nil), e.Key...))
		}
		return true
	})
	for _, k := range doomed {
		ctx.Delete(k) //nolint:errcheck // raced deletes are fine
	}
}

// --- durable ring geometry -------------------------------------------------

// ringManifest (ring.json) is a cluster directory's authoritative ring
// geometry. Written at creation and advanced only when a migration
// completes, so a directory always reopens onto a ring that places every
// key where it actually is.
type ringManifest struct {
	Shards       int `json:"shards"`
	VirtualNodes int `json:"virtual_nodes"`
}

// reshardMarker (reshard.json) exists while a migration is in flight (or
// died in flight). Its presence at open time means placement may include
// strays — partial copies, un-purged sources — and triggers a sweep
// against the manifest ring.
type reshardMarker struct {
	FromShards int `json:"from_shards"`
	ToShards   int `json:"to_shards"`
}

const (
	ringManifestName  = "ring.json"
	reshardMarkerName = "reshard.json"
)

func writeRingManifest(dir string, shards, vnodes int) error {
	data, err := json.Marshal(ringManifest{Shards: shards, VirtualNodes: vnodes})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ringManifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("memcached: ring manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ringManifestName)); err != nil {
		return fmt.Errorf("memcached: ring manifest: %w", err)
	}
	return nil
}

// readRingManifest returns nil (no error) when the directory has no
// manifest — a pre-resharding layout, placed by the caller's config.
func readRingManifest(dir string) (*ringManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ringManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("memcached: ring manifest: %w", err)
	}
	var m ringManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("memcached: ring manifest corrupt: %w", err)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("memcached: ring manifest: bad shard count %d", m.Shards)
	}
	return &m, nil
}

func writeReshardMarker(dir string, from, to int) error {
	data, err := json.Marshal(reshardMarker{FromShards: from, ToShards: to})
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, reshardMarkerName), data, 0o644); err != nil {
		return fmt.Errorf("memcached: reshard marker: %w", err)
	}
	return nil
}

func hasReshardMarker(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, reshardMarkerName))
	return err == nil
}

func removeReshardMarker(dir string) {
	os.Remove(filepath.Join(dir, reshardMarkerName)) //nolint:errcheck
}
