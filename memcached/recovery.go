package memcached

import (
	"fmt"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/internal/hodor"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
)

// Crash recovery.
//
// The paper's failure story stops at detection: a client that dies inside
// the library leaves the store in an unknown state, and the watchdog's
// only remedy is to poison the library so every later call fails. This
// file upgrades poison to quarantine → repair → resume. When hodor
// observes a crash mid-call (a trampolined call panicking, or the
// watchdog reaping an overdue call of a killed process) it parks new
// callers and hands the Bookkeeper a *CrashError; repairStore then
//
//  1. force-releases heap-resident locks whose owners are provably dead
//     and retires their epoch announcements, so surviving in-flight
//     calls stop blocking on a corpse;
//  2. drains the surviving calls through hodor (bounded by the grace
//     period — the same bound callers park under);
//  3. with the store quiescent, clears the operation gate and runs the
//     structural repair pass (core.Store.Repair) followed by the
//     allocator's heap verifier;
//  4. returns, at which point hodor flips the library back to Healthy
//     and the parked callers proceed.
//
// A repair that fails leaves the library poisoned — exactly the old
// behaviour, reached only when the new one cannot help.

// ownerDefunct is the liveness oracle handed to the core layer: it may
// report a lock-owner token dead only when that execution context can
// never again touch the heap. Tokens with a live hodor call in flight
// are always alive (killed processes run to completion); beyond that,
// hodor's own books decide, falling back to the process registry for
// threads that crashed outside any trampolined call (the maintainer).
func (b *Bookkeeper) ownerDefunct(token uint64) bool {
	if b.lib.TokenActive(token) {
		return false
	}
	if b.lib.TokenDefunct(token) {
		return true
	}
	pid := int(token >> 20)
	b.procMu.Lock()
	p := b.procs[pid]
	b.procMu.Unlock()
	return p != nil && p.Killed()
}

// registerProc records a process in the liveness registry.
func (b *Bookkeeper) registerProc(p *proc.Process) {
	b.procMu.Lock()
	b.procs[p.ID] = p
	b.procMu.Unlock()
}

// fpRepairFail simulates an unrepairable crash: an armed handler panics
// out of the repair routine before it touches any lock, so hodor's
// runRepair poisons the library — the terminal state the shard
// supervisor's rebuild ladder exists to recover from. It sits above the
// repairMu acquisition so the simulated failure never leaks a mutex.
var fpRepairFail = faultpoint.New("recover.repair_fail")

// repairStore is the repair routine registered with hodor.OnRecover. It
// runs on hodor's recovery goroutine while the library is in the
// Recovering state (new calls parked, crashed call already unwound).
func (b *Bookkeeper) repairStore(cause *hodor.CrashError) error {
	fpRepairFail.Maybe()
	dead := b.ownerDefunct
	grace := b.lib.RecoveryGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	repairStart := time.Now()
	deadline := repairStart.Add(grace)
	// Every pass below re-breaks locks and announcements; accumulate what
	// they actually released so the repair report reflects the whole cycle
	// (the observability plane exports these as recovery-event counters).
	locksBroken, readersRetired := 0, 0

	// repairMu may be held by a maintenance or checkpoint pass that is
	// itself wedged on state the crash left behind — most directly,
	// RunOnce spinning in a lock acquire on an item or LRU lock whose
	// holder died after that pass cleared its Recovering() check. Waiting
	// blind would deadlock recovery forever: the lock is only ever broken
	// by us. Breaking dead-owner locks is a per-word CAS against the
	// observed owner and safe to run concurrently with anything, so run it
	// while waiting for the mutex — it is exactly what unwedges the pass
	// holding it.
	for !b.repairMu.TryLock() {
		locksBroken += b.store.ForceReleaseDeadLocks(dead)
		readersRetired += b.store.RetireDeadReaders(dead)
		if time.Now().After(deadline) {
			return fmt.Errorf("memcached: maintenance pass did not release the repair lock within %v after %v", grace, cause)
		}
		time.Sleep(50 * time.Microsecond)
	}
	defer b.repairMu.Unlock()

	// Quarantine: break the dead owners' locks and epoch announcements
	// first, so live calls blocked on them can finish, then drain. The
	// loop re-breaks each round because a call reaped *during* the drain
	// may itself have died holding locks.
	for {
		locksBroken += b.store.ForceReleaseDeadLocks(dead)
		readersRetired += b.store.RetireDeadReaders(dead)
		if b.lib.DrainLiveCalls(50 * time.Millisecond) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("memcached: live calls did not drain within %v after %v", grace, cause)
		}
	}
	// Final passes with the store quiescent: whatever the last reaped
	// call held is now safe to break.
	locksBroken += b.store.ForceReleaseDeadLocks(dead)
	readersRetired += b.store.RetireDeadReaders(dead)
	locksBroken += b.alloc.RepairLocks()
	b.store.RepairGate()

	// Structural repair runs on a fresh bookkeeper thread.
	rc := b.store.NewCtx(b.proc.NewThread().LockOwner())
	rep, err := b.store.Repair(rc)
	rc.Close()
	if err != nil {
		return fmt.Errorf("memcached: structural repair failed: %w", err)
	}
	if _, err := b.alloc.Check(); err != nil {
		return fmt.Errorf("memcached: heap verification after repair failed: %w", err)
	}
	// Gate hardening: tear down protection domains of tenants that died or
	// were reaped, returning their virtual keys and arena pages. Runs after
	// structural repair so a revoked tenant's in-flight unwind has nothing
	// left to race with.
	b.sweepDeadTenantDomains()

	rep.LocksBroken = locksBroken
	rep.ReadersRetired = readersRetired
	b.repairReportMu.Lock()
	b.lastRepair = rep
	b.repairs++
	b.locksBroken += locksBroken
	b.readersRetired += readersRetired
	b.histsRepaired += rep.HistogramsRepaired
	b.lastRepairTime = time.Since(repairStart)
	b.lastRepairAt = time.Now()
	b.repairReportMu.Unlock()
	return nil
}

// sweepDeadTenantDomains revokes the per-tenant protection domains of
// sessions that can never use them again: watchdog-reaped sessions and
// sessions of killed processes with no call in flight (a run-to-completion
// call still owns its pin; a later repair catches it). Revocation re-tags
// the tenant's arena to the fence, returns its hardware key, and frees the
// arena page back to the heap under the library's key — so a hostile
// tenant cannot leak protection keys or heap pages by getting reaped.
func (b *Bookkeeper) sweepDeadTenantDomains() {
	if b.vt == nil {
		return
	}
	b.tenantMu.Lock()
	var dead []*Session
	for s := range b.tenants {
		if s.hs.Reaped() || (s.th.Proc.Killed() && !s.hs.InCall()) {
			dead = append(dead, s)
			delete(b.tenants, s)
		}
	}
	b.tenantMu.Unlock()
	if len(dead) == 0 {
		return
	}
	rc := b.store.NewCtx(b.proc.NewThread().LockOwner())
	for _, s := range dead {
		b.vt.Revoke(s.tenantDom.VKey)
		b.pt.Assign(s.tenantPage, shm.PageSize, b.dom.Key) //nolint:errcheck
		rc.FreePage(s.tenantPage)                          //nolint:errcheck
	}
	rc.Close()
}

// LastRepair returns the most recent structural repair report and how
// many repair passes have completed.
func (b *Bookkeeper) LastRepair() (core.RepairReport, int) {
	b.repairReportMu.Lock()
	defer b.repairReportMu.Unlock()
	return b.lastRepair, b.repairs
}
