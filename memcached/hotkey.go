package memcached

import (
	"sort"
	"sync"
)

// Hot-key detection: each shard carries a space-saving top-k counter fed
// by the cluster's read path. A key whose observed read count inside the
// current window reaches the configured threshold is marked hot, and the
// cluster starts replicating reads of it to the next shard on the ring —
// so one viral key stops concentrating its whole load on a single heap.
//
// The counter is the classic space-saving sketch: at most k tracked keys;
// an untracked key evicts the minimum-count entry and inherits its count
// as an error floor (over-counting is possible, under-counting is not).
// Promotion to hot requires count − floor ≥ threshold — the sketch's
// lower bound on the key's true read count — so an inherited count alone
// can never mint an instantly-hot key. Counts halve every window so
// yesterday's celebrity decays back to cold.
//
// Demotion (decay below threshold, or eviction from the sketch) queues
// the key on a demotion list the cluster read path drains: the replica
// copied to the ring successor is deleted when its key stops being hot,
// because writes stop invalidating it the moment isHot turns false.

// hotCount is one tracked key's windowed count and its space-saving
// error floor (the count it inherited at eviction time).
type hotCount struct {
	n     uint64
	floor uint64
}

// hotTracker is one shard's top-k read counter. Safe for concurrent use.
type hotTracker struct {
	mu        sync.Mutex
	k         int
	threshold uint64 // reads per window that make a key hot; 0 = disabled
	window    uint64 // observations between decay passes
	seen      uint64 // observations since the last decay
	counts    map[string]hotCount
	hot       map[string]struct{}
	detected  uint64   // cumulative keys ever promoted to hot
	demoted   []string // hot keys dropped since the last drain; replicas to invalidate
}

// defaultHotKeyWindow is the decay period in observations.
const defaultHotKeyWindow = 1 << 16

// hotTrackerK bounds the tracked key set per shard.
const hotTrackerK = 128

func newHotTracker(threshold, window uint64) *hotTracker {
	if window == 0 {
		window = defaultHotKeyWindow
	}
	return &hotTracker{
		k:         hotTrackerK,
		threshold: threshold,
		window:    window,
		counts:    make(map[string]hotCount, hotTrackerK),
		hot:       make(map[string]struct{}),
	}
}

// observe records one read of key and reports whether the key is hot
// (including becoming hot by this very read).
func (h *hotTracker) observe(key []byte) bool {
	if h.threshold == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Decay on the window boundary *before* recording this read, so the
	// triggering observation lands fully inside the new window — both its
	// count increment and its tick of `seen`. (Decaying after seen++ kept
	// the increment but reset `seen` to zero, silently dropping the
	// observation from the new window's budget and drifting the boundary
	// by one per window.)
	if h.seen >= h.window {
		h.decayLocked()
	}
	h.seen++
	k := string(key)
	c, ok := h.counts[k]
	if !ok {
		if len(h.counts) >= h.k {
			// Space-saving eviction: replace the minimum entry. The evicted
			// count is inherited as both the starting count and the error
			// floor — the new key may have been read up to minC times while
			// untracked, but is only *guaranteed* n−floor reads.
			minK, minC := "", ^uint64(0)
			for ek, ec := range h.counts {
				if ec.n < minC {
					minK, minC = ek, ec.n
				}
			}
			h.dropLocked(minK)
			c = hotCount{n: minC, floor: minC}
		}
	}
	c.n++
	h.counts[k] = c
	if c.n >= h.threshold && c.n-c.floor >= h.threshold {
		if _, was := h.hot[k]; !was {
			h.hot[k] = struct{}{}
			h.detected++
		}
		return true
	}
	return false
}

// isHot reports whether key is currently marked hot (write-path check: a
// mutation of a hot key must invalidate its replica).
func (h *hotTracker) isHot(key []byte) bool {
	if h.threshold == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.hot[string(key)]
	return ok
}

// dropLocked removes k from the sketch, queueing it for replica
// invalidation if it was hot. Called with h.mu held.
func (h *hotTracker) dropLocked(k string) {
	delete(h.counts, k)
	if _, was := h.hot[k]; was {
		delete(h.hot, k)
		h.demoted = append(h.demoted, k)
	}
}

// decayLocked halves every count and demotes keys that fell below the
// threshold. Called with h.mu held.
func (h *hotTracker) decayLocked() {
	h.seen = 0
	for k, c := range h.counts {
		c.n /= 2
		c.floor /= 2
		if c.n == 0 {
			h.dropLocked(k)
			continue
		}
		h.counts[k] = c
		if c.n < h.threshold {
			if _, was := h.hot[k]; was {
				delete(h.hot, k)
				h.demoted = append(h.demoted, k)
			}
		}
	}
}

// takeDemoted drains the demotion queue: keys that stopped being hot
// since the last drain and whose ring-successor replicas must be
// deleted (writes no longer invalidate them). Returns nil when empty —
// the common read path pays one nil check.
func (h *hotTracker) takeDemoted() []string {
	if h.threshold == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.demoted
	h.demoted = nil
	return d
}

// HotKey is one tracked key and its current windowed count.
type HotKey struct {
	Key   string
	Count uint64
	Hot   bool
}

// snapshot returns the tracked keys sorted by descending count, plus the
// cumulative detected counter.
func (h *hotTracker) snapshot() ([]HotKey, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HotKey, 0, len(h.counts))
	for k, c := range h.counts {
		_, isHot := h.hot[k]
		out = append(out, HotKey{Key: k, Count: c.n, Hot: isHot})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out, h.detected
}
