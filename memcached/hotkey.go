package memcached

import (
	"sort"
	"sync"
)

// Hot-key detection: each shard carries a space-saving top-k counter fed
// by the cluster's read path. A key whose observed read count inside the
// current window reaches the configured threshold is marked hot, and the
// cluster starts replicating reads of it to the next shard on the ring —
// so one viral key stops concentrating its whole load on a single heap.
//
// The counter is the classic space-saving sketch: at most k tracked keys;
// an untracked key evicts the minimum-count entry and inherits its count
// (over-counting is possible, under-counting is not, which errs toward
// detecting hot keys). Counts halve every window so yesterday's celebrity
// decays back to cold.

// hotTracker is one shard's top-k read counter. Safe for concurrent use.
type hotTracker struct {
	mu        sync.Mutex
	k         int
	threshold uint64 // reads per window that make a key hot; 0 = disabled
	window    uint64 // observations between decay passes
	seen      uint64 // observations since the last decay
	counts    map[string]uint64
	hot       map[string]struct{}
	detected  uint64 // cumulative keys ever promoted to hot
}

// defaultHotKeyWindow is the decay period in observations.
const defaultHotKeyWindow = 1 << 16

// hotTrackerK bounds the tracked key set per shard.
const hotTrackerK = 128

func newHotTracker(threshold, window uint64) *hotTracker {
	if window == 0 {
		window = defaultHotKeyWindow
	}
	return &hotTracker{
		k:         hotTrackerK,
		threshold: threshold,
		window:    window,
		counts:    make(map[string]uint64, hotTrackerK),
		hot:       make(map[string]struct{}),
	}
}

// observe records one read of key and reports whether the key is hot
// (including becoming hot by this very read).
func (h *hotTracker) observe(key []byte) bool {
	if h.threshold == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen++
	if h.seen >= h.window {
		h.decayLocked()
	}
	k := string(key)
	c, ok := h.counts[k]
	if !ok {
		if len(h.counts) >= h.k {
			// Space-saving eviction: replace the minimum entry, inheriting
			// its count as the new key's floor.
			minK, minC := "", ^uint64(0)
			for ek, ec := range h.counts {
				if ec < minC {
					minK, minC = ek, ec
				}
			}
			delete(h.counts, minK)
			delete(h.hot, minK)
			c = minC
		}
	}
	c++
	h.counts[k] = c
	if c >= h.threshold {
		if _, was := h.hot[k]; !was {
			h.hot[k] = struct{}{}
			h.detected++
		}
		return true
	}
	return false
}

// isHot reports whether key is currently marked hot (write-path check: a
// mutation of a hot key must invalidate its replica).
func (h *hotTracker) isHot(key []byte) bool {
	if h.threshold == 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.hot[string(key)]
	return ok
}

// decayLocked halves every count and demotes keys that fell below the
// threshold. Called with h.mu held.
func (h *hotTracker) decayLocked() {
	h.seen = 0
	for k, c := range h.counts {
		c /= 2
		if c == 0 {
			delete(h.counts, k)
			delete(h.hot, k)
			continue
		}
		h.counts[k] = c
		if c < h.threshold {
			delete(h.hot, k)
		}
	}
}

// HotKey is one tracked key and its current windowed count.
type HotKey struct {
	Key   string
	Count uint64
	Hot   bool
}

// snapshot returns the tracked keys sorted by descending count, plus the
// cumulative detected counter.
func (h *hotTracker) snapshot() ([]HotKey, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HotKey, 0, len(h.counts))
	for k, c := range h.counts {
		_, isHot := h.hot[k]
		out = append(out, HotKey{Key: k, Count: c, Hot: isHot})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out, h.detected
}
