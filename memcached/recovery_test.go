package memcached

import (
	"testing"
	"time"

	"plibmc/internal/faultpoint"
)

// TestRecoveryUnwedgesMaintenancePass is the regression test for the
// recovery deadlock: a maintenance pass clears its Recovering() check,
// takes the repair mutex, and wedges inside the sweep on a stripe lock
// whose holder then dies mid-call. Recovery used to block on the repair
// mutex that only the wedged pass could release, while the wedged pass
// spun on a lock that only recovery could break. repairStore now breaks
// dead-owner locks while waiting for the mutex, so the pass completes,
// the mutex frees, and repair proceeds.
func TestRecoveryUnwedgesMaintenancePass(t *testing.T) {
	b, err := CreateStore(Config{
		HeapBytes:    16 << 20,
		HashPower:    8,
		NumItemLocks: 16,
		MemLimit:     8 << 20,
		CallTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	doomed := newTestSession(t, b)
	survivor := newTestSession(t, b)

	lockHeld := make(chan struct{})
	releaseCrash := make(chan struct{})
	if err := faultpoint.Arm("ops.store.locked", func() {
		close(lockHeld)
		<-releaseCrash
		panic("injected crash: ops.store.locked")
	}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()

	// The doomed call parks inside the library with a stripe lock held.
	crashDone := make(chan error, 1)
	go func() { crashDone <- doomed.Set([]byte("doomed-key"), []byte("v"), 0, 0) }()
	<-lockHeld

	// A maintenance pass starts while the store is healthy: it takes the
	// repair mutex and wedges in SweepExpired on the held stripe.
	maintDone := make(chan struct{})
	go func() { b.RunMaintenanceOnce(); close(maintDone) }()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-maintDone:
		t.Fatal("maintenance completed while the stripe lock was held")
	default:
	}

	// The parked call now dies holding the lock.
	close(releaseCrash)
	if err := <-crashDone; err == nil {
		t.Fatal("crashed call returned nil error")
	}
	faultpoint.DisarmAll()

	select {
	case <-maintDone:
	case <-time.After(10 * time.Second):
		t.Fatal("maintenance pass still wedged after the crash: recovery deadlocked on the repair mutex")
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Library().Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("library did not leave the Recovering state")
		}
		time.Sleep(time.Millisecond)
	}
	if b.Library().Poisoned() {
		t.Fatal("library poisoned; repair should have succeeded")
	}

	// The repaired store gives full service, including the key whose
	// write crashed (the crash point is before the store mutates).
	if err := survivor.Set([]byte("doomed-key"), []byte("v2"), 0, 0); err != nil {
		t.Fatalf("post-recovery set: %v", err)
	}
	v, _, err := survivor.Get([]byte("doomed-key"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("post-recovery get = %q %v", v, err)
	}
	if _, n := b.LastRepair(); n == 0 {
		t.Fatal("no repair pass recorded")
	}
}
