package compat

import (
	"path/filepath"
	"testing"

	"plibmc/internal/client"
	"plibmc/internal/server"
	"plibmc/memcached"
)

func plibSt(t *testing.T) *St {
	t.Helper()
	b, err := memcached.CreateStore(memcached.Config{HeapBytes: 8 << 20, HashPower: 9, NumItemLocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	m := Create()
	m.UsePlib(s)
	return m
}

func socketSt(t *testing.T) *St {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "mc.sock")
	srv, err := server.New(server.Config{Network: "unix", Addr: sock, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c, err := client.Dial("unix", sock, client.Binary)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	m := Create()
	m.UseSocket(c)
	return m
}

// testClassicAPI runs the same drop-in calls against any backend: the
// paper's claim is that existing applications work unchanged.
func testClassicAPI(t *testing.T, m *St) {
	t.Helper()
	if rc := m.Set([]byte("k"), []byte("v1"), 0, 7); rc != Success {
		t.Fatalf("set = %v", rc)
	}
	v, flags, rc := m.Get([]byte("k"))
	if rc != Success || string(v) != "v1" || flags != 7 {
		t.Fatalf("get = %q %d %v", v, flags, rc)
	}
	if _, _, rc := m.Get([]byte("missing")); rc != NotFound {
		t.Fatalf("miss = %v", rc)
	}
	if rc := m.Add([]byte("k"), []byte("x"), 0, 0); rc != NotStored {
		t.Fatalf("add existing = %v", rc)
	}
	if rc := m.Replace([]byte("nope"), []byte("x"), 0, 0); rc != NotStored {
		t.Fatalf("replace missing = %v", rc)
	}
	if rc := m.Append([]byte("k"), []byte("+")); rc != Success {
		t.Fatalf("append = %v", rc)
	}
	if rc := m.Prepend([]byte("k"), []byte("-")); rc != Success {
		t.Fatalf("prepend = %v", rc)
	}
	v, _, _ = m.Get([]byte("k"))
	if string(v) != "-v1+" {
		t.Fatalf("value = %q", v)
	}
	m.Set([]byte("n"), []byte("9"), 0, 0)
	if n, rc := m.Increment([]byte("n"), 1); rc != Success || n != 10 {
		t.Fatalf("incr = %d %v", n, rc)
	}
	if n, rc := m.Decrement([]byte("n"), 100); rc != Success || n != 0 {
		t.Fatalf("decr = %d %v", n, rc)
	}
	if rc := m.Touch([]byte("k"), 600); rc != Success {
		t.Fatalf("touch = %v", rc)
	}
	if rc := m.Delete([]byte("k")); rc != Success {
		t.Fatalf("delete = %v", rc)
	}
	if rc := m.Delete([]byte("k")); rc != NotFound {
		t.Fatalf("re-delete = %v", rc)
	}
	called := false
	m.GetWithCallback([]byte("n"), func(v []byte, _ uint32, rc ReturnT) {
		called = true
		if rc != Success || string(v) != "0" {
			t.Errorf("callback: %q %v", v, rc)
		}
	})
	if !called {
		t.Fatal("callback not invoked synchronously")
	}
	// Batched multi-get.
	m.Set([]byte("a"), []byte("1"), 0, 0)
	m.Set([]byte("b"), []byte("2"), 0, 0)
	got, rc2 := m.MGet([][]byte{[]byte("a"), []byte("b"), []byte("missing")})
	if rc2 != Success || len(got) != 2 || string(got["a"]) != "1" || string(got["b"]) != "2" {
		t.Fatalf("mget = %v, %v", got, rc2)
	}
	if rc := m.Flush(); rc != Success {
		t.Fatalf("flush = %v", rc)
	}
}

func TestClassicAPIOverPlib(t *testing.T)   { testClassicAPI(t, plibSt(t)) }
func TestClassicAPIOverSocket(t *testing.T) { testClassicAPI(t, socketSt(t)) }

// St.MGet over the plib backend batches: the whole key set crosses the
// gate once (ISSUE 6 satellite).
func TestMGetSingleCrossingOverPlib(t *testing.T) {
	b, err := memcached.CreateStore(memcached.Config{HeapBytes: 8 << 20, HashPower: 9, NumItemLocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	m := Create()
	m.UsePlib(s)
	const n = 64
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte{'k', byte('a' + i/26), byte('a' + i%26)}
		if rc := m.Set(keys[i], []byte("v"), 0, 0); rc != Success {
			t.Fatalf("set %d = %v", i, rc)
		}
	}
	before := b.Library().Metrics().Crossings
	got, rc := m.MGet(keys)
	if rc != Success || len(got) != n {
		t.Fatalf("mget = %d keys, %v", len(got), rc)
	}
	if after := b.Library().Metrics().Crossings; after-before != 1 {
		t.Fatalf("MGet of %d keys took %d crossings, want 1", n, after-before)
	}
}

func TestNetworkConfigNoOps(t *testing.T) {
	m := plibSt(t)
	// Default: accepted and ignored (drop-in behaviour).
	if rc := m.AddServer("localhost", 11211); rc != Success {
		t.Fatalf("AddServer = %v", rc)
	}
	if rc := m.SetBehavior(BehaviorBinaryProtocol, 1); rc != Success {
		t.Fatalf("SetBehavior = %v", rc)
	}
	// Strict: flagged as errors "to facilitate migration".
	m.SetStrict(true)
	if rc := m.AddServer("localhost", 11211); rc != NotSupported {
		t.Fatalf("strict AddServer = %v", rc)
	}
	if rc := m.SetBehavior(BehaviorTCPNoDelay, 1); rc != NotSupported {
		t.Fatalf("strict SetBehavior = %v", rc)
	}
	// Socket backend keeps accepting them even in strict mode.
	ms := socketSt(t)
	ms.SetStrict(true)
	if rc := ms.AddServer("localhost", 11211); rc != Success {
		t.Fatalf("socket AddServer = %v", rc)
	}
}

func TestUnconnectedHandle(t *testing.T) {
	m := Create()
	if _, _, rc := m.Get([]byte("k")); rc != ClientError {
		t.Fatalf("get on unconnected = %v", rc)
	}
	if rc := m.Set([]byte("k"), []byte("v"), 0, 0); rc != ClientError {
		t.Fatalf("set on unconnected = %v", rc)
	}
}

func TestReturnStrings(t *testing.T) {
	for _, rc := range []ReturnT{Success, Failure, NotFound, NotStored,
		DataExists, ClientError, ServerError, NotSupported, BadKeyProvided, E2Big, ReturnT(99)} {
		if rc.String() == "" {
			t.Fatalf("empty name for %d", int(rc))
		}
	}
}

func TestBadKeyAndBigValue(t *testing.T) {
	m := plibSt(t)
	long := make([]byte, 300)
	if rc := m.Set(long, []byte("v"), 0, 0); rc != BadKeyProvided {
		t.Fatalf("long key = %v", rc)
	}
	big := make([]byte, 2<<20)
	if rc := m.Set([]byte("k"), big, 0, 0); rc != E2Big {
		t.Fatalf("big value = %v", rc)
	}
}
