package compat_test

import (
	"fmt"

	"plibmc/memcached"
	"plibmc/memcached/compat"
)

// A legacy application written against the classic API runs unchanged on
// the protected library: the memcached_st's connection configuration is
// accepted and ignored.
func Example() {
	book, _ := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20})
	defer book.Shutdown()
	app, _ := book.NewClientProcess(1000)
	sess, _ := app.NewSession()
	defer sess.Close()

	m := compat.Create()
	m.UsePlib(sess)
	m.AddServer("localhost", 11211) // vestigial; a no-op for direct calls
	m.SetBehavior(compat.BehaviorBinaryProtocol, 1)

	m.Set([]byte("k"), []byte("drop-in"), 0, 0)
	v, _, rc := m.Get([]byte("k"))
	fmt.Println(string(v), rc)
	// Output: drop-in SUCCESS
}

// Strict mode flags the dead configuration so applications can migrate to
// the new API (paper §3.1).
func ExampleSt_SetStrict() {
	book, _ := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20})
	defer book.Shutdown()
	app, _ := book.NewClientProcess(1000)
	sess, _ := app.NewSession()
	defer sess.Close()

	m := compat.Create()
	m.UsePlib(sess)
	m.SetStrict(true)
	fmt.Println(m.AddServer("localhost", 11211))
	// Output: NOT_SUPPORTED
}
