// Package compat provides the classic libmemcached-style API — the one
// that takes a memcached_st handle carrying "server information, protocol
// details, and the state of the current operation, none of which are
// required for direct-through-Hodor calls" (§3.1). Existing applications
// keep their calls unchanged; the handle's backend can be the protected
// library (drop-in acceleration) or a socket client (the original
// behaviour), and connection-configuration calls become no-ops by default
// or errors in strict mode "to facilitate migration to the newer
// interface."
package compat

import (
	"errors"
	"fmt"

	"plibmc/internal/client"
	"plibmc/memcached"
)

// ReturnT is memcached_return_t.
type ReturnT int

// Return codes (a practical subset).
const (
	Success ReturnT = iota
	Failure
	NotFound
	NotStored
	DataExists
	ClientError
	ServerError
	NotSupported
	BadKeyProvided
	E2Big
)

func (r ReturnT) String() string {
	names := map[ReturnT]string{
		Success: "SUCCESS", Failure: "FAILURE", NotFound: "NOTFOUND",
		NotStored: "NOT_STORED", DataExists: "DATA_EXISTS",
		ClientError: "CLIENT_ERROR", ServerError: "SERVER_ERROR",
		NotSupported: "NOT_SUPPORTED", BadKeyProvided: "BAD_KEY_PROVIDED",
		E2Big: "E2BIG",
	}
	if s, ok := names[r]; ok {
		return s
	}
	return fmt.Sprintf("RETURN(%d)", int(r))
}

// Behavior is memcached_behavior_t: connection and protocol knobs that are
// meaningless for direct calls.
type Behavior int

// Behaviors (a practical subset; all are network-related).
const (
	BehaviorBinaryProtocol Behavior = iota
	BehaviorTCPNoDelay
	BehaviorNoBlock
	BehaviorSndTimeout
	BehaviorRcvTimeout
	BehaviorConnectTimeout
	BehaviorRetryTimeout
)

// St is memcached_st. Zero value is unusable; use Create.
type St struct {
	backend backend
	strict  bool
	servers []string
	behav   map[Behavior]uint64
}

type backend interface {
	mget(keys [][]byte) (map[string][]byte, error)
	get(key []byte) ([]byte, uint32, error)
	gat(key []byte, exptime int64) ([]byte, uint32, error)
	set(key, value []byte, flags uint32, exptime int64) error
	add(key, value []byte, flags uint32, exptime int64) error
	replace(key, value []byte, flags uint32, exptime int64) error
	delete(key []byte) error
	increment(key []byte, delta uint64) (uint64, error)
	decrement(key []byte, delta uint64) (uint64, error)
	append(key, data []byte) error
	prepend(key, data []byte) error
	touch(key []byte, exptime int64) error
	flush() error
}

// Create builds an unconnected handle (memcached_create).
func Create() *St {
	return &St{behav: make(map[Behavior]uint64)}
}

// SetStrict makes network-configuration calls return NotSupported instead
// of silently succeeding, to surface dead configuration during migration.
func (m *St) SetStrict(on bool) { m.strict = on }

// UsePlib attaches the protected-library backend: the drop-in replacement.
func (m *St) UsePlib(s *memcached.Session) { m.backend = plibBackend{s} }

// UseSocket attaches the original socket backend.
func (m *St) UseSocket(c *client.Client) { m.backend = sockBackend{c} }

// AddServer records a server (memcached_server_add). With the plib backend
// it is configuration with no effect, exactly as the paper treats it.
func (m *St) AddServer(host string, port int) ReturnT {
	if m.strict {
		if _, ok := m.backend.(plibBackend); ok {
			return NotSupported
		}
	}
	m.servers = append(m.servers, fmt.Sprintf("%s:%d", host, port))
	return Success
}

// SetBehavior configures a network behaviour (memcached_behavior_set):
// a no-op for direct calls, an error in strict mode.
func (m *St) SetBehavior(b Behavior, v uint64) ReturnT {
	if m.strict {
		if _, ok := m.backend.(plibBackend); ok {
			return NotSupported
		}
	}
	m.behav[b] = v
	return Success
}

func (m *St) ret(err error) ReturnT {
	switch {
	case err == nil:
		return Success
	case errors.Is(err, memcached.ErrNotFound):
		return NotFound
	case errors.Is(err, memcached.ErrExists), errors.Is(err, memcached.ErrCASMismatch):
		return DataExists
	case errors.Is(err, memcached.ErrKeyTooLong):
		return BadKeyProvided
	case errors.Is(err, memcached.ErrValueTooBig):
		return E2Big
	case errors.Is(err, memcached.ErrNoSpace):
		return ServerError
	default:
		return Failure
	}
}

// Get is memcached_get: returns the value, its flags, and a return code.
func (m *St) Get(key []byte) ([]byte, uint32, ReturnT) {
	if m.backend == nil {
		return nil, 0, ClientError
	}
	v, flags, err := m.backend.get(key)
	return v, flags, m.ret(err)
}

// Set is memcached_set.
func (m *St) Set(key, value []byte, exptime int64, flags uint32) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	return m.ret(m.backend.set(key, value, flags, exptime))
}

// Add is memcached_add.
func (m *St) Add(key, value []byte, exptime int64, flags uint32) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	err := m.backend.add(key, value, flags, exptime)
	if m.ret(err) == DataExists {
		return NotStored
	}
	return m.ret(err)
}

// Replace is memcached_replace.
func (m *St) Replace(key, value []byte, exptime int64, flags uint32) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	err := m.backend.replace(key, value, flags, exptime)
	if m.ret(err) == NotFound {
		return NotStored
	}
	return m.ret(err)
}

// Delete is memcached_delete.
func (m *St) Delete(key []byte) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	return m.ret(m.backend.delete(key))
}

// Increment is memcached_increment.
func (m *St) Increment(key []byte, delta uint64) (uint64, ReturnT) {
	if m.backend == nil {
		return 0, ClientError
	}
	v, err := m.backend.increment(key, delta)
	return v, m.ret(err)
}

// Decrement is memcached_decrement.
func (m *St) Decrement(key []byte, delta uint64) (uint64, ReturnT) {
	if m.backend == nil {
		return 0, ClientError
	}
	v, err := m.backend.decrement(key, delta)
	return v, m.ret(err)
}

// Append is memcached_append.
func (m *St) Append(key, data []byte) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	return m.ret(m.backend.append(key, data))
}

// Prepend is memcached_prepend.
func (m *St) Prepend(key, data []byte) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	return m.ret(m.backend.prepend(key, data))
}

// Touch is memcached_touch.
func (m *St) Touch(key []byte, exptime int64) ReturnT {
	if m.backend == nil {
		return ClientError
	}
	return m.ret(m.backend.touch(key, exptime))
}

// Flush is memcached_flush.
func (m *St) Flush() ReturnT {
	if m.backend == nil {
		return ClientError
	}
	return m.ret(m.backend.flush())
}

// MGet is memcached_mget + memcached_fetch collapsed into one call:
// retrieve many keys at once. Over the socket backend this is the batched
// quiet-get pipeline; over the protected library it is one trampoline
// crossing for the whole batch.
func (m *St) MGet(keys [][]byte) (map[string][]byte, ReturnT) {
	if m.backend == nil {
		return nil, ClientError
	}
	out, err := m.backend.mget(keys)
	if err != nil {
		return nil, Failure
	}
	return out, Success
}

// GAT is memcached_get_by_key with expiration (get-and-touch).
func (m *St) GAT(key []byte, exptime int64) ([]byte, uint32, ReturnT) {
	if m.backend == nil {
		return nil, 0, ClientError
	}
	v, flags, err := m.backend.gat(key, exptime)
	return v, flags, m.ret(err)
}

// GetWithCallback is the asynchronous API (§3.1): the callback runs as soon
// as the call returns, since direct calls complete immediately.
func (m *St) GetWithCallback(key []byte, cb func(value []byte, flags uint32, rc ReturnT)) {
	v, flags, rc := m.Get(key)
	cb(v, flags, rc)
}

// plibBackend adapts a protected-library session.
type plibBackend struct{ s *memcached.Session }

func (b plibBackend) get(key []byte) ([]byte, uint32, error) { return b.s.Get(key) }
func (b plibBackend) gat(key []byte, exptime int64) ([]byte, uint32, error) {
	return b.s.GetAndTouch(key, exptime)
}
func (b plibBackend) mget(keys [][]byte) (map[string][]byte, error) {
	res, err := b.s.MGet(keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(res))
	for i, r := range res {
		if r.Found {
			out[string(keys[i])] = r.Value
		}
	}
	return out, nil
}
func (b plibBackend) set(k, v []byte, f uint32, e int64) error {
	return b.s.Set(k, v, f, e)
}
func (b plibBackend) add(k, v []byte, f uint32, e int64) error { return b.s.Add(k, v, f, e) }
func (b plibBackend) replace(k, v []byte, f uint32, e int64) error {
	return b.s.Replace(k, v, f, e)
}
func (b plibBackend) delete(k []byte) error                        { return b.s.Delete(k) }
func (b plibBackend) increment(k []byte, d uint64) (uint64, error) { return b.s.Increment(k, d) }
func (b plibBackend) decrement(k []byte, d uint64) (uint64, error) { return b.s.Decrement(k, d) }
func (b plibBackend) append(k, d []byte) error                     { return b.s.Append(k, d) }
func (b plibBackend) prepend(k, d []byte) error                    { return b.s.Prepend(k, d) }
func (b plibBackend) touch(k []byte, e int64) error                { return b.s.Touch(k, e) }
func (b plibBackend) flush() error                                 { return b.s.FlushAll() }

// sockBackend adapts the socket client.
type sockBackend struct{ c *client.Client }

func (b sockBackend) get(key []byte) ([]byte, uint32, error) {
	v, f, _, err := b.c.Get(key)
	if err != nil {
		return nil, 0, memcached.ErrNotFound
	}
	return v, f, nil
}
func (b sockBackend) set(k, v []byte, f uint32, e int64) error { return b.c.Set(k, v, f, e) }
func (b sockBackend) mget(keys [][]byte) (map[string][]byte, error) {
	return b.c.MGet(keys)
}
func (b sockBackend) gat(key []byte, exptime int64) ([]byte, uint32, error) {
	v, f, _, err := b.c.GetAndTouch(key, exptime)
	if err != nil {
		return nil, 0, memcached.ErrNotFound
	}
	return v, f, nil
}
func (b sockBackend) add(k, v []byte, f uint32, e int64) error {
	if err := b.c.Add(k, v, f, e); err != nil {
		return memcached.ErrExists
	}
	return nil
}
func (b sockBackend) replace(k, v []byte, f uint32, e int64) error {
	if err := b.c.Replace(k, v, f, e); err != nil {
		return memcached.ErrNotFound
	}
	return nil
}
func (b sockBackend) delete(k []byte) error {
	if err := b.c.Delete(k); err != nil {
		return memcached.ErrNotFound
	}
	return nil
}
func (b sockBackend) increment(k []byte, d uint64) (uint64, error) {
	v, err := b.c.Increment(k, d)
	if err != nil {
		return 0, memcached.ErrNotFound
	}
	return v, nil
}
func (b sockBackend) decrement(k []byte, d uint64) (uint64, error) {
	v, err := b.c.Decrement(k, d)
	if err != nil {
		return 0, memcached.ErrNotFound
	}
	return v, nil
}
func (b sockBackend) append(k, d []byte) error {
	if err := b.c.Append(k, d); err != nil {
		return memcached.ErrNotFound
	}
	return nil
}
func (b sockBackend) prepend(k, d []byte) error {
	if err := b.c.Prepend(k, d); err != nil {
		return memcached.ErrNotFound
	}
	return nil
}
func (b sockBackend) touch(k []byte, e int64) error {
	if err := b.c.Touch(k, e); err != nil {
		return memcached.ErrNotFound
	}
	return nil
}
func (b sockBackend) flush() error { return b.c.FlushAll() }
