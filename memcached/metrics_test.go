package memcached

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
)

// TestMetricsSnapshot drives a few operations and checks the merged
// snapshot ties the layers together: op counters, per-class latency,
// trampoline accounting, heap occupancy.
func TestMetricsSnapshot(t *testing.T) {
	b, err := CreateStore(Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t, b)
	for i := 0; i < 10; i++ {
		if err := s.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get([]byte("k")); err != nil {
			t.Fatal(err)
		}
	}
	m := b.Metrics()
	if m.Ops.Gets != 10 || m.Ops.Sets != 10 {
		t.Fatalf("ops = %d gets / %d sets, want 10/10", m.Ops.Gets, m.Ops.Sets)
	}
	if got := m.Latency.Classes[core.LatGet].Count(); got != 10 {
		t.Fatalf("get latency samples = %d, want 10", got)
	}
	if p99 := m.Latency.Classes[core.LatSet].Percentile(99); p99 <= 0 {
		t.Fatalf("set p99 = %v, want > 0", p99)
	}
	if m.SampleEvery != 1 {
		t.Fatalf("SampleEvery = %d, want 1", m.SampleEvery)
	}
	if m.Library.Calls == 0 || m.Library.Crossings != m.Library.Calls {
		t.Fatalf("library calls=%d crossings=%d, want one completed crossing per call > 0",
			m.Library.Calls, m.Library.Crossings)
	}
	if m.HeapLiveBytes == 0 || m.HeapCapacity == 0 || m.HeapLiveBytes > m.HeapCapacity {
		t.Fatalf("heap live=%d capacity=%d", m.HeapLiveBytes, m.HeapCapacity)
	}
}

// TestMetricsHandler scrapes /metrics and /debug/vars through the real
// handler — the smoke test the acceptance criteria name: Prometheus text
// with per-op-class quantiles, crossing counts, recovery counters.
func TestMetricsHandler(t *testing.T) {
	b, err := CreateStore(Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t, b)
	for i := 0; i < 20; i++ {
		if err := s.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get([]byte("k")); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(b.MetricsHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`plibmc_op_latency_seconds{op="get",quantile="0.5"}`,
		`plibmc_op_latency_seconds{op="get",quantile="0.99"}`,
		`plibmc_op_latency_seconds{op="set",quantile="0.99"}`,
		`plibmc_op_latency_seconds_count{op="get"} 20`,
		`plibmc_ops_total{op="get"} 20`,
		"plibmc_trampoline_crossings_total",
		"plibmc_recovery_repairs_total",
		"plibmc_recovery_locks_broken_total",
		"plibmc_heap_live_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The quantile sample must carry a positive value, not just exist.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `plibmc_op_latency_seconds{op="get",quantile="0.99"}`) {
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[1] == "0" {
				t.Errorf("get p99 sample = %q, want positive value", line)
			}
		}
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if got, ok := vars["cmd_get"].(float64); !ok || got != 20 {
		t.Fatalf("vars cmd_get = %v, want 20", vars["cmd_get"])
	}
	if _, ok := vars["latency_get_p99_ns"]; !ok {
		t.Fatal("vars missing latency_get_p99_ns")
	}
}

// TestMetricsRecoveryCounters crashes a call and checks the recovery
// counters move through the snapshot.
func TestMetricsRecoveryCounters(t *testing.T) {
	b, err := CreateStore(Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t, b)
	if err := s.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := faultpoint.Arm("ops.store.locked", func() {
		panic("injected crash: ops.store.locked")
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k2"), []byte("v"), 0, 0); err == nil {
		t.Fatal("crashed call returned nil error")
	}
	faultpoint.DisarmAll()
	deadline := time.Now().Add(10 * time.Second)
	for b.Library().Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("library did not leave the Recovering state")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.Get([]byte("k")); err != nil {
		t.Fatalf("get after recovery: %v", err)
	}
	m := b.Metrics()
	if m.Recovery.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1", m.Recovery.Repairs)
	}
	if m.Recovery.TimeToResume <= 0 {
		t.Fatalf("time to resume = %v, want > 0", m.Recovery.TimeToResume)
	}
	if m.Recovery.LastRepairAt.IsZero() {
		t.Fatal("LastRepairAt not set")
	}
	if m.Library.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", m.Library.Crashes)
	}
}
