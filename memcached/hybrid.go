package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"plibmc/internal/core"
	"plibmc/internal/protocol"
)

// Hybrid mode (paper §6): "there is no reason … not to allow the memcached
// background process to provide a socket-based interface for remote clients
// while still permitting local clients to use the Hodor interface." The
// bookkeeping process serves both wire protocols over any listener; local
// processes keep calling through trampolines into the very same store.

// RemoteServer is the bookkeeper's socket front end for remote clients.
type RemoteServer struct {
	b      *Bookkeeper
	ln     net.Listener
	connWG sync.WaitGroup
	seq    uint64
	mu     sync.Mutex
}

// ServeRemote starts accepting remote connections. Close the returned
// server to stop.
func (b *Bookkeeper) ServeRemote(network, addr string) (*RemoteServer, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: hybrid listener: %w", err)
	}
	rs := &RemoteServer{b: b, ln: ln}
	go rs.acceptLoop()
	return rs, nil
}

// Addr returns the listener address.
func (rs *RemoteServer) Addr() net.Addr { return rs.ln.Addr() }

// Close stops the listener and waits for in-flight connections.
func (rs *RemoteServer) Close() {
	rs.ln.Close()
	rs.connWG.Wait()
}

func (rs *RemoteServer) acceptLoop() {
	for {
		c, err := rs.ln.Accept()
		if err != nil {
			return
		}
		rs.connWG.Add(1)
		go rs.handle(c)
	}
}

// maxPipeline bounds how many pipelined commands one batched dispatch
// carries; a deeper client pipeline simply splits into several batches.
const maxPipeline = 64

func (rs *RemoteServer) handle(c net.Conn) {
	defer rs.connWG.Done()
	defer c.Close()
	rs.mu.Lock()
	rs.seq++
	owner := uint64(1)<<40 | rs.seq // distinct from local thread owners
	rs.mu.Unlock()
	ctx := rs.b.store.NewCtx(owner)
	defer ctx.Close()

	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	isBinary := first[0] == 0x80
	readCmd := func() (*protocol.Command, error) {
		if isBinary {
			return protocol.ReadBinaryCommand(r)
		}
		return protocol.ReadASCIICommand(r)
	}
	cmds := make([]*protocol.Command, 0, maxPipeline)
	for {
		// Read one command (blocking), then greedily drain whatever the
		// client already pipelined: back-to-back commands become one
		// batched dispatch, so remote pipelines amortize the gate exactly
		// like local ExecBatch callers.
		cmds = cmds[:0]
		cmd, err := readCmd()
		if err != nil {
			return
		}
		quit := cmd.Op == protocol.OpQuit
		var readErr error
		if !quit {
			cmds = append(cmds, cmd)
			for len(cmds) < maxPipeline && r.Buffered() > 0 {
				c2, e := readCmd()
				if e != nil {
					readErr = e
					break
				}
				if c2.Op == protocol.OpQuit {
					quit = true
					break
				}
				cmds = append(cmds, c2)
			}
		}
		dispatchPipeline(ctx, w, isBinary, cmds)
		if quit || readErr != nil {
			w.Flush()
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// dispatchPipeline executes a run of pipelined commands, riding ExecBatch
// for every contiguous stretch of batchable ones (including the expansion
// of ASCII multi-key gets) and falling back to single dispatch for the
// rest. Replies are written in command order.
func dispatchPipeline(ctx *core.Ctx, w *bufio.Writer, binary bool, cmds []*protocol.Command) {
	for i := 0; i < len(cmds); {
		// Collect the contiguous batchable run starting at i.
		j := i
		var ops []core.BatchOp
		var spans []int // batch ops consumed per command
		for j < len(cmds) {
			cOps := batchOpsFor(cmds[j])
			if cOps == nil {
				break
			}
			ops = append(ops, cOps...)
			spans = append(spans, len(cOps))
			j++
		}
		if len(ops) > 1 {
			res := ctx.ExecBatch(ops)
			off := 0
			for k := i; k < j; k++ {
				n := spans[k-i]
				writeBatchedReply(w, binary, cmds[k], res[off:off+n])
				off += n
			}
			i = j
			continue
		}
		// Lone command (or a non-batchable one): ordinary dispatch, which
		// keeps per-class latency attribution for singletons.
		rep := DispatchCore(ctx, cmds[i], "1.6.0-plib-hybrid")
		if binary {
			protocol.WriteBinaryReply(w, cmds[i], rep)
		} else {
			protocol.WriteASCIIReply(w, cmds[i], rep)
		}
		i++
	}
}

// batchOpsFor returns cmd's batch encoding — one op, or one per key for a
// multi-key get — or nil when the command cannot ride a batch (stats,
// version, flush_all, noop).
func batchOpsFor(cmd *protocol.Command) []core.BatchOp {
	switch cmd.Op {
	case protocol.OpGet:
		keys := cmd.AllKeys()
		ops := make([]core.BatchOp, len(keys))
		for i, k := range keys {
			ops[i] = core.BatchOp{Code: core.BatchGet, Key: k}
		}
		return ops
	case protocol.OpSet:
		return []core.BatchOp{{Code: core.BatchSet, Key: cmd.Key, Value: cmd.Value, Flags: cmd.Flags, Exptime: cmd.Exptime}}
	case protocol.OpAdd:
		return []core.BatchOp{{Code: core.BatchAdd, Key: cmd.Key, Value: cmd.Value, Flags: cmd.Flags, Exptime: cmd.Exptime}}
	case protocol.OpReplace:
		return []core.BatchOp{{Code: core.BatchReplace, Key: cmd.Key, Value: cmd.Value, Flags: cmd.Flags, Exptime: cmd.Exptime}}
	case protocol.OpCAS:
		return []core.BatchOp{{Code: core.BatchCAS, Key: cmd.Key, Value: cmd.Value, Flags: cmd.Flags, Exptime: cmd.Exptime, CAS: cmd.CAS}}
	case protocol.OpAppend:
		return []core.BatchOp{{Code: core.BatchAppend, Key: cmd.Key, Value: cmd.Value}}
	case protocol.OpPrepend:
		return []core.BatchOp{{Code: core.BatchPrepend, Key: cmd.Key, Value: cmd.Value}}
	case protocol.OpDelete:
		return []core.BatchOp{{Code: core.BatchDelete, Key: cmd.Key}}
	case protocol.OpIncr:
		return []core.BatchOp{{Code: core.BatchIncr, Key: cmd.Key, Delta: cmd.Delta}}
	case protocol.OpDecr:
		return []core.BatchOp{{Code: core.BatchDecr, Key: cmd.Key, Delta: cmd.Delta}}
	case protocol.OpTouch:
		return []core.BatchOp{{Code: core.BatchTouch, Key: cmd.Key, Exptime: cmd.Exptime}}
	case protocol.OpGAT:
		return []core.BatchOp{{Code: core.BatchGAT, Key: cmd.Key, Exptime: cmd.Exptime}}
	default:
		return nil
	}
}

// writeBatchedReply renders one command's share of a batch's results. An
// ASCII multi-key get consumes several results under a single END;
// everything else is one result translated to the ordinary reply.
func writeBatchedReply(w *bufio.Writer, binary bool, cmd *protocol.Command, res []core.BatchResult) {
	if !binary && cmd.Op == protocol.OpGet && len(cmd.Keys) > 0 {
		keys := cmd.AllKeys()
		// A key whose shard is down must not masquerade as a miss: the
		// response ends with the SERVER_ERROR line instead of END so the
		// client knows the multiget was partial.
		var downFrame string
		for i := range res {
			if res[i].Err == nil {
				fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", keys[i], res[i].Flags, len(res[i].Value), res[i].CAS)
				w.Write(res[i].Value)
				w.WriteString("\r\n")
			} else if f, ok := ShardDownFrame(res[i].Err); ok && downFrame == "" {
				downFrame = f
			}
		}
		if downFrame != "" {
			fmt.Fprintf(w, "SERVER_ERROR %s\r\n", downFrame)
			return
		}
		w.WriteString("END\r\n")
		return
	}
	r := &res[0]
	rep := &protocol.Reply{Status: coreStatus(r.Err), Opaque: cmd.Opaque}
	if r.Err == nil {
		rep.Value, rep.Flags, rep.CAS, rep.Numeric = r.Value, r.Flags, r.CAS, r.Num
	} else if f, ok := ShardDownFrame(r.Err); ok {
		rep.Message = f
	}
	if binary {
		protocol.WriteBinaryReply(w, cmd, rep)
	} else {
		protocol.WriteASCIIReply(w, cmd, rep)
	}
}

// coreStatus translates a core error into a wire status.
func coreStatus(err error) protocol.Status {
	switch {
	case err == nil:
		return protocol.StatusOK
	case errors.Is(err, core.ErrNotFound):
		return protocol.StatusKeyNotFound
	case errors.Is(err, core.ErrExists), errors.Is(err, core.ErrCASMismatch):
		return protocol.StatusKeyExists
	case errors.Is(err, core.ErrNotNumeric):
		return protocol.StatusNonNumeric
	case errors.Is(err, core.ErrValueTooBig):
		return protocol.StatusValueTooLarge
	case errors.Is(err, core.ErrNoSpace):
		return protocol.StatusOutOfMemory
	case errors.Is(err, ErrShardDown):
		return protocol.StatusTempFailure
	default:
		return protocol.StatusInvalidArgs
	}
}

// DispatchCore executes one protocol command against a protected-library
// store context, translating core errors into wire statuses.
func DispatchCore(ctx *core.Ctx, cmd *protocol.Command, version string) *protocol.Reply {
	rep := &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
	toStatus := coreStatus
	switch cmd.Op {
	case protocol.OpGet:
		v, flags, cas, err := ctx.Get(cmd.Key)
		rep.Status = toStatus(err)
		if err == nil {
			rep.Value, rep.Flags, rep.CAS = v, flags, cas
		}
	case protocol.OpSet:
		rep.Status = toStatus(ctx.Set(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime))
	case protocol.OpAdd:
		rep.Status = toStatus(ctx.Add(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime))
	case protocol.OpReplace:
		rep.Status = toStatus(ctx.Replace(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime))
	case protocol.OpCAS:
		rep.Status = toStatus(ctx.CAS(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime, cmd.CAS))
	case protocol.OpAppend:
		rep.Status = toStatus(ctx.Append(cmd.Key, cmd.Value))
	case protocol.OpPrepend:
		rep.Status = toStatus(ctx.Prepend(cmd.Key, cmd.Value))
	case protocol.OpDelete:
		rep.Status = toStatus(ctx.Delete(cmd.Key))
	case protocol.OpIncr:
		v, err := ctx.Increment(cmd.Key, cmd.Delta)
		rep.Numeric, rep.Status = v, toStatus(err)
	case protocol.OpDecr:
		v, err := ctx.Decrement(cmd.Key, cmd.Delta)
		rep.Numeric, rep.Status = v, toStatus(err)
	case protocol.OpTouch:
		rep.Status = toStatus(ctx.Touch(cmd.Key, cmd.Exptime))
	case protocol.OpGAT:
		v, flags, cas, err := ctx.GetAndTouch(cmd.Key, cmd.Exptime)
		rep.Status = toStatus(err)
		if err == nil {
			rep.Value, rep.Flags, rep.CAS = v, flags, cas
		}
	case protocol.OpFlushAll:
		ctx.FlushAll()
	case protocol.OpStats:
		if cmd.StatsArg == "latency" {
			// The heap-resident scattered histograms, merged across slots.
			ls := ctx.Store().Latency()
			for class := 0; class < core.NumLatClasses; class++ {
				h := &ls.Classes[class]
				prefix := core.LatClassNames[class]
				rep.Stats = append(rep.Stats,
					[2]string{prefix + ":count", strconv.FormatUint(h.Count(), 10)},
					[2]string{prefix + ":p50_us", strconv.FormatInt(h.Percentile(50).Microseconds(), 10)},
					[2]string{prefix + ":p99_us", strconv.FormatInt(h.Percentile(99).Microseconds(), 10)},
					[2]string{prefix + ":max_us", strconv.FormatInt(h.Max().Microseconds(), 10)},
				)
			}
			break
		}
		st := ctx.Store().Stats()
		rep.Stats = [][2]string{
			{"cmd_get", strconv.FormatUint(st.Gets, 10)},
			{"get_hits", strconv.FormatUint(st.GetHits, 10)},
			{"get_misses", strconv.FormatUint(st.GetMisses, 10)},
			{"cmd_set", strconv.FormatUint(st.Sets, 10)},
			{"cmd_delete", strconv.FormatUint(st.Deletes, 10)},
			{"cmd_touch", strconv.FormatUint(st.Touches, 10)},
			{"curr_items", strconv.FormatUint(st.CurrItems, 10)},
			{"bytes", strconv.FormatUint(st.Bytes, 10)},
			{"evictions", strconv.FormatUint(st.Evictions, 10)},
			{"expired", strconv.FormatUint(st.Expired, 10)},
		}
	case protocol.OpVersion:
		rep.Version = version
	case protocol.OpNoop:
	default:
		rep.Status = protocol.StatusUnknownCommand
	}
	return rep
}
