package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"plibmc/internal/core"
	"plibmc/internal/protocol"
)

// Hybrid mode (paper §6): "there is no reason … not to allow the memcached
// background process to provide a socket-based interface for remote clients
// while still permitting local clients to use the Hodor interface." The
// bookkeeping process serves both wire protocols over any listener; local
// processes keep calling through trampolines into the very same store.

// RemoteServer is the bookkeeper's socket front end for remote clients.
type RemoteServer struct {
	b      *Bookkeeper
	ln     net.Listener
	connWG sync.WaitGroup
	seq    uint64
	mu     sync.Mutex
}

// ServeRemote starts accepting remote connections. Close the returned
// server to stop.
func (b *Bookkeeper) ServeRemote(network, addr string) (*RemoteServer, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: hybrid listener: %w", err)
	}
	rs := &RemoteServer{b: b, ln: ln}
	go rs.acceptLoop()
	return rs, nil
}

// Addr returns the listener address.
func (rs *RemoteServer) Addr() net.Addr { return rs.ln.Addr() }

// Close stops the listener and waits for in-flight connections.
func (rs *RemoteServer) Close() {
	rs.ln.Close()
	rs.connWG.Wait()
}

func (rs *RemoteServer) acceptLoop() {
	for {
		c, err := rs.ln.Accept()
		if err != nil {
			return
		}
		rs.connWG.Add(1)
		go rs.handle(c)
	}
}

func (rs *RemoteServer) handle(c net.Conn) {
	defer rs.connWG.Done()
	defer c.Close()
	rs.mu.Lock()
	rs.seq++
	owner := uint64(1)<<40 | rs.seq // distinct from local thread owners
	rs.mu.Unlock()
	ctx := rs.b.store.NewCtx(owner)
	defer ctx.Close()

	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	isBinary := first[0] == 0x80
	for {
		var cmd *protocol.Command
		if isBinary {
			cmd, err = protocol.ReadBinaryCommand(r)
		} else {
			cmd, err = protocol.ReadASCIICommand(r)
		}
		if err != nil {
			return
		}
		if cmd.Op == protocol.OpQuit {
			return
		}
		rep := DispatchCore(ctx, cmd, "1.6.0-plib-hybrid")
		if isBinary {
			protocol.WriteBinaryReply(w, cmd, rep)
		} else {
			protocol.WriteASCIIReply(w, cmd, rep)
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// DispatchCore executes one protocol command against a protected-library
// store context, translating core errors into wire statuses.
func DispatchCore(ctx *core.Ctx, cmd *protocol.Command, version string) *protocol.Reply {
	rep := &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
	toStatus := func(err error) protocol.Status {
		switch {
		case err == nil:
			return protocol.StatusOK
		case errors.Is(err, core.ErrNotFound):
			return protocol.StatusKeyNotFound
		case errors.Is(err, core.ErrExists), errors.Is(err, core.ErrCASMismatch):
			return protocol.StatusKeyExists
		case errors.Is(err, core.ErrNotNumeric):
			return protocol.StatusNonNumeric
		case errors.Is(err, core.ErrValueTooBig):
			return protocol.StatusValueTooLarge
		case errors.Is(err, core.ErrNoSpace):
			return protocol.StatusOutOfMemory
		default:
			return protocol.StatusInvalidArgs
		}
	}
	switch cmd.Op {
	case protocol.OpGet:
		v, flags, cas, err := ctx.Get(cmd.Key)
		rep.Status = toStatus(err)
		if err == nil {
			rep.Value, rep.Flags, rep.CAS = v, flags, cas
		}
	case protocol.OpSet:
		rep.Status = toStatus(ctx.Set(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime))
	case protocol.OpAdd:
		rep.Status = toStatus(ctx.Add(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime))
	case protocol.OpReplace:
		rep.Status = toStatus(ctx.Replace(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime))
	case protocol.OpCAS:
		rep.Status = toStatus(ctx.CAS(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime, cmd.CAS))
	case protocol.OpAppend:
		rep.Status = toStatus(ctx.Append(cmd.Key, cmd.Value))
	case protocol.OpPrepend:
		rep.Status = toStatus(ctx.Prepend(cmd.Key, cmd.Value))
	case protocol.OpDelete:
		rep.Status = toStatus(ctx.Delete(cmd.Key))
	case protocol.OpIncr:
		v, err := ctx.Increment(cmd.Key, cmd.Delta)
		rep.Numeric, rep.Status = v, toStatus(err)
	case protocol.OpDecr:
		v, err := ctx.Decrement(cmd.Key, cmd.Delta)
		rep.Numeric, rep.Status = v, toStatus(err)
	case protocol.OpTouch:
		rep.Status = toStatus(ctx.Touch(cmd.Key, cmd.Exptime))
	case protocol.OpGAT:
		v, flags, cas, err := ctx.GetAndTouch(cmd.Key, cmd.Exptime)
		rep.Status = toStatus(err)
		if err == nil {
			rep.Value, rep.Flags, rep.CAS = v, flags, cas
		}
	case protocol.OpFlushAll:
		ctx.FlushAll()
	case protocol.OpStats:
		if cmd.StatsArg == "latency" {
			// The heap-resident scattered histograms, merged across slots.
			ls := ctx.Store().Latency()
			for class := 0; class < core.NumLatClasses; class++ {
				h := &ls.Classes[class]
				prefix := core.LatClassNames[class]
				rep.Stats = append(rep.Stats,
					[2]string{prefix + ":count", strconv.FormatUint(h.Count(), 10)},
					[2]string{prefix + ":p50_us", strconv.FormatInt(h.Percentile(50).Microseconds(), 10)},
					[2]string{prefix + ":p99_us", strconv.FormatInt(h.Percentile(99).Microseconds(), 10)},
					[2]string{prefix + ":max_us", strconv.FormatInt(h.Max().Microseconds(), 10)},
				)
			}
			break
		}
		st := ctx.Store().Stats()
		rep.Stats = [][2]string{
			{"cmd_get", strconv.FormatUint(st.Gets, 10)},
			{"get_hits", strconv.FormatUint(st.GetHits, 10)},
			{"get_misses", strconv.FormatUint(st.GetMisses, 10)},
			{"cmd_set", strconv.FormatUint(st.Sets, 10)},
			{"cmd_delete", strconv.FormatUint(st.Deletes, 10)},
			{"cmd_touch", strconv.FormatUint(st.Touches, 10)},
			{"curr_items", strconv.FormatUint(st.CurrItems, 10)},
			{"bytes", strconv.FormatUint(st.Bytes, 10)},
			{"evictions", strconv.FormatUint(st.Evictions, 10)},
			{"expired", strconv.FormatUint(st.Expired, 10)},
		}
	case protocol.OpVersion:
		rep.Version = version
	case protocol.OpNoop:
	default:
		rep.Status = protocol.StatusUnknownCommand
	}
	return rep
}
