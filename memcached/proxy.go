package memcached

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"sync"

	"plibmc/internal/core"
	"plibmc/internal/protocol"
	"plibmc/internal/ring"
)

// The cluster's socket proxy: baseline-protocol clients (ASCII or binary)
// get sharding transparently. One connection carries one context per
// shard; pipelined command runs are partitioned by owning shard and each
// shard's share rides a single ExecBatch crossing — the proxy-tier
// equivalent of the beanseye pattern, with the per-shard gate
// amortization preserved. Replies always come back in command order.

// ClusterServer is the cluster's socket front end.
type ClusterServer struct {
	c      *Cluster
	ln     net.Listener
	connWG sync.WaitGroup
	seq    uint64
	mu     sync.Mutex
}

// ServeRemote starts accepting remote connections for the cluster. Close
// the returned server to stop.
func (c *Cluster) ServeRemote(network, addr string) (*ClusterServer, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("memcached: cluster listener: %w", err)
	}
	cs := &ClusterServer{c: c, ln: ln}
	go cs.acceptLoop()
	return cs, nil
}

// Addr returns the listener address.
func (cs *ClusterServer) Addr() net.Addr { return cs.ln.Addr() }

// Close stops the listener and waits for in-flight connections.
func (cs *ClusterServer) Close() {
	cs.ln.Close()
	cs.connWG.Wait()
}

func (cs *ClusterServer) acceptLoop() {
	for {
		c, err := cs.ln.Accept()
		if err != nil {
			return
		}
		cs.connWG.Add(1)
		go cs.handle(c)
	}
}

// connCtxs is one connection's per-shard operation contexts, created
// lazily so a connection that only ever touches two shards never opens a
// context on the other N-2.
type connCtxs struct {
	c     *Cluster
	owner uint64
	ctxs  []*core.Ctx
	// books pins each context to the Bookkeeper it was opened on: when
	// the supervisor rebuilds a shard, the stale context (bound to the
	// dropped store's heap) is replaced on next use.
	books []*Bookkeeper
}

func (cc *connCtxs) ctx(shard int) *core.Ctx {
	// A live resize can widen the cluster under a connection opened
	// before it; the slice grows to match.
	for len(cc.ctxs) <= shard {
		cc.ctxs = append(cc.ctxs, nil)
		cc.books = append(cc.books, nil)
	}
	b := cc.c.Shard(shard)
	if cc.ctxs[shard] == nil || cc.books[shard] != b {
		// A replaced shard's old context is dropped, not closed: Close
		// walks the old heap's allocator, and that heap is the poisoned
		// one the rebuild just abandoned.
		cc.ctxs[shard] = b.Store().NewCtx(cc.owner)
		cc.books[shard] = b
	}
	return cc.ctxs[shard]
}

func (cc *connCtxs) close() {
	for i, ctx := range cc.ctxs {
		if ctx == nil {
			continue
		}
		// Contexts on a dropped or poisoned store are leaked on purpose:
		// their teardown would touch the dead heap.
		if cc.books[i] != nil && cc.books[i].Library().Poisoned() {
			continue
		}
		ctx.Close()
	}
}

func (cs *ClusterServer) handle(c net.Conn) {
	defer cs.connWG.Done()
	defer c.Close()
	cs.mu.Lock()
	cs.seq++
	owner := uint64(1)<<41 | cs.seq // distinct from local and hybrid owners
	cs.mu.Unlock()
	nsh := cs.c.Shards()
	cc := &connCtxs{c: cs.c, owner: owner,
		ctxs: make([]*core.Ctx, nsh), books: make([]*Bookkeeper, nsh)}
	defer cc.close()

	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	isBinary := first[0] == 0x80
	readCmd := func() (*protocol.Command, error) {
		if isBinary {
			return protocol.ReadBinaryCommand(r)
		}
		return protocol.ReadASCIICommand(r)
	}
	cmds := make([]*protocol.Command, 0, maxPipeline)
	for {
		cmds = cmds[:0]
		cmd, err := readCmd()
		if err != nil {
			if !isBinary {
				fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", err)
				w.Flush()
			}
			return
		}
		quit := cmd.Op == protocol.OpQuit
		var readErr error
		if !quit {
			cmds = append(cmds, cmd)
			for len(cmds) < maxPipeline && r.Buffered() > 0 {
				c2, e := readCmd()
				if e != nil {
					readErr = e
					break
				}
				if c2.Op == protocol.OpQuit {
					quit = true
					break
				}
				cmds = append(cmds, c2)
			}
		}
		cs.dispatchShardedPipeline(cc, w, isBinary, cmds)
		if readErr != nil && !isBinary {
			fmt.Fprintf(w, "CLIENT_ERROR %v\r\n", readErr)
		}
		if quit || readErr != nil {
			w.Flush()
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// opRef locates one batch op inside the per-shard partition: which shard
// it went to and at which position in that shard's sub-batch.
type opRef struct {
	shard int
	pos   int
}

// dispatchShardedPipeline executes a run of pipelined commands. Every
// contiguous stretch of batchable commands is partitioned by owning shard
// and each involved shard executes its share in one ExecBatch crossing;
// replies are reassembled in command order. Non-batchable commands
// (stats, version, flush_all) dispatch individually against the cluster.
// During a live resize, routing goes through the dual-ring rules: every
// touched mid-migration segment's guard is held (shared, acquired once)
// until the run's crossings retire, and writes into such segments are
// dirty-marked for the pre-cutover recopy.
func (cs *ClusterServer) dispatchShardedPipeline(cc *connCtxs, w *bufio.Writer, binary bool, cmds []*protocol.Command) {
	c := cs.c
	for i := 0; i < len(cmds); {
		j := i
		var refs []opRef // flat op index → shard/pos
		var spans []int  // batch ops consumed per command
		c.routeMu.RLock()
		perShard := make([][]core.BatchOp, c.Shards())
		migActive := c.mig.Load() != nil
		var held map[*migSeg]struct{}
		var guards []*migSeg
		if migActive {
			held = make(map[*migSeg]struct{})
		}
		for j < len(cmds) {
			cOps := batchOpsFor(cmds[j])
			if cOps == nil {
				break
			}
			for _, op := range cOps {
				sh, g := c.routeHash(ring.Hash(op.Key), held)
				if g != nil {
					if _, ok := held[g]; !ok {
						held[g] = struct{}{}
						guards = append(guards, g)
					}
					if op.Code != core.BatchGet {
						g.markDirty(op.Key)
					}
				} else if op.Code == core.BatchGet && !migActive {
					// Feed the hot-key tracker so pipelined readers count
					// toward detection; batched reads still serve from the
					// primary (replica fall-through only exists on the
					// routed single-get paths). Suspended mid-migration,
					// like every replica path.
					top := c.top()
					top.hot[sh].observe(op.Key)
					cs.drainDemoted(cc, top, sh)
				}
				refs = append(refs, opRef{shard: sh, pos: len(perShard[sh])})
				perShard[sh] = append(perShard[sh], op)
			}
			spans = append(spans, len(cOps))
			j++
		}
		release := func() {
			for _, g := range guards {
				g.release()
			}
			c.routeMu.RUnlock()
		}
		if len(refs) > 1 {
			// One crossing per involved shard for the whole run. A shard
			// behind an open breaker (or poisoned/rebuilding — the direct
			// contexts bypass the hodor gate, so the proxy must check)
			// fills its slots with the typed fast-fail; sibling shards'
			// results keep their positional alignment.
			perShardRes := make([][]core.BatchResult, len(perShard))
			for sh := range perShard {
				if len(perShard[sh]) == 0 {
					continue
				}
				if err := c.proxyAllow(sh); err != nil {
					down := make([]core.BatchResult, len(perShard[sh]))
					for k := range down {
						down[k].Err = err
					}
					perShardRes[sh] = down
					continue
				}
				perShardRes[sh] = cc.ctx(sh).ExecBatch(perShard[sh])
			}
			release()
			flat := make([]core.BatchResult, len(refs))
			for k, ref := range refs {
				flat[k] = perShardRes[ref.shard][ref.pos]
			}
			off := 0
			for k := i; k < j; k++ {
				n := spans[k-i]
				writeBatchedReply(w, binary, cmds[k], flat[off:off+n])
				off += n
			}
			i = j
			continue
		}
		// Lone or non-batchable command: dispatchOne routes (and guards)
		// on its own.
		release()
		rep := cs.dispatchOne(cc, cmds[i])
		if binary {
			protocol.WriteBinaryReply(w, cmds[i], rep)
		} else {
			protocol.WriteASCIIReply(w, cmds[i], rep)
		}
		i++
	}
}

// drainDemoted deletes the ring-successor replicas of keys the tracker
// demoted from hot — the proxy-side half of the stale-replica fix (the
// routed session path drains in ClusterSession.Get).
func (cs *ClusterServer) drainDemoted(cc *connCtxs, top *topology, primary int) {
	d := top.hot[primary].takeDemoted()
	if d == nil {
		return
	}
	rep := cs.c.replicaOf(primary)
	if cs.c.proxyAllow(rep) != nil {
		return // replica shard down; its rebuild purge clears strays
	}
	for _, k := range d {
		if cc.ctx(rep).Delete([]byte(k)) == nil {
			cs.c.invalidations.Add(1)
		}
	}
}

// dispatchOne executes a single command against the cluster: keyed
// commands route to the owning shard (a lone plain get additionally rides
// the hot-key replica path); keyless commands fan out or aggregate.
func (cs *ClusterServer) dispatchOne(cc *connCtxs, cmd *protocol.Command) *protocol.Reply {
	c := cs.c
	switch cmd.Op {
	case protocol.OpFlushAll:
		for sh := 0; sh < c.Shards(); sh++ {
			if err := c.proxyAllow(sh); err != nil {
				// A flush that cannot reach every shard must not claim
				// it flushed the cluster.
				return shardDownReply(cmd, err)
			}
			cc.ctx(sh).FlushAll()
		}
		return &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
	case protocol.OpStats:
		return cs.statsReply(cc, cmd)
	case protocol.OpVersion:
		return &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque,
			Version: fmt.Sprintf("1.6.0-plib-cluster/%d", c.Shards())}
	case protocol.OpNoop:
		return &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
	case protocol.OpGet:
		if len(cmd.Keys) == 0 {
			return cs.hotGet(cc, cmd)
		}
	}
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	sh, g := c.routeKey(cmd.Key)
	if g != nil {
		if cmd.Op != protocol.OpGet {
			g.markDirty(cmd.Key)
		}
		defer g.release()
	}
	if err := c.proxyAllow(sh); err != nil {
		return shardDownReply(cmd, err)
	}
	return DispatchCore(cc.ctx(sh), cmd, "1.6.0-plib-cluster")
}

// shardDownReply renders a breaker fast-fail as a wire reply: ASCII
// clients see "SERVER_ERROR shard N recovering|rebuilding", binary
// clients the temporary-failure status with the frame as the value.
func shardDownReply(cmd *protocol.Command, err error) *protocol.Reply {
	rep := &protocol.Reply{Status: protocol.StatusTempFailure, Opaque: cmd.Opaque}
	if f, ok := ShardDownFrame(err); ok {
		rep.Message = f
	}
	return rep
}

// hotGet serves a lone plain get with the same hot-key replica policy as
// ClusterSession.Get.
func (cs *ClusterServer) hotGet(cc *connCtxs, cmd *protocol.Command) *protocol.Reply {
	c := cs.c
	key := cmd.Key
	c.routeMu.RLock()
	defer c.routeMu.RUnlock()
	primary, g := c.routeKey(key)
	rep := &protocol.Reply{Opaque: cmd.Opaque}
	if err := c.proxyAllow(primary); err != nil {
		if g != nil {
			g.release()
		}
		return shardDownReply(cmd, err)
	}
	if g != nil {
		// Mid-migration segment: plain primary read under the guard, no
		// replica involvement.
		v, f, cas, err := cc.ctx(primary).Get(key)
		g.release()
		rep.Status = coreStatus(err)
		if err == nil {
			rep.Value, rep.Flags, rep.CAS = v, f, cas
		}
		return rep
	}
	top := c.top()
	if c.cfg.HotKeyThreshold > 0 && len(top.shards) > 1 && c.mig.Load() == nil {
		hot := top.hot[primary].observe(key)
		cs.drainDemoted(cc, top, primary)
		if hot {
			replica := c.replicaOf(primary)
			// A replica behind an open breaker (or poisoned) is skipped,
			// never dispatched into: fall through to the primary.
			if c.proxyAllow(replica) == nil {
				if v, f, cas, err := cc.ctx(replica).Get(key); err == nil {
					c.replicaHits.Add(1)
					rep.Status, rep.Value, rep.Flags, rep.CAS = protocol.StatusOK, v, f, cas
					return rep
				}
			}
			c.replicaMisses.Add(1)
			v, f, cas, err := cc.ctx(primary).Get(key)
			rep.Status = coreStatus(err)
			if err != nil {
				return rep
			}
			if c.proxyAllow(replica) == nil && cc.ctx(replica).Set(key, v, f, 0) == nil {
				c.replications.Add(1)
			}
			rep.Value, rep.Flags, rep.CAS = v, f, cas
			return rep
		}
	}
	v, f, cas, err := cc.ctx(primary).Get(key)
	rep.Status = coreStatus(err)
	if err == nil {
		rep.Value, rep.Flags, rep.CAS = v, f, cas
	}
	return rep
}

// statsReply aggregates the default counter set across shards; per-shard
// counters are appended under a shard<N>: prefix so the routing tier stays
// observable from a plain memcached client.
func (cs *ClusterServer) statsReply(cc *connCtxs, cmd *protocol.Command) *protocol.Reply {
	c := cs.c
	if cmd.StatsArg != "" {
		// Subcommand stats (latency, slabs, …) don't aggregate cleanly;
		// serve every shard's lines under its prefix.
		rep := &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
		for sh := 0; sh < c.Shards(); sh++ {
			if err := c.proxyAllow(sh); err != nil {
				if f, ok := ShardDownFrame(err); ok {
					rep.Stats = append(rep.Stats, [2]string{fmt.Sprintf("shard%d:down", sh), f})
				}
				continue
			}
			sub := DispatchCore(cc.ctx(sh), cmd, "1.6.0-plib-cluster")
			for _, kv := range sub.Stats {
				rep.Stats = append(rep.Stats, [2]string{fmt.Sprintf("shard%d:%s", sh, kv[0]), kv[1]})
			}
		}
		return rep
	}
	agg := c.Stats()
	cm := c.Metrics()
	hm := cm.HotKey
	mm := cm.Migration
	rep := &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
	rep.Stats = [][2]string{
		{"shards", strconv.Itoa(c.Shards())},
		{"cmd_get", strconv.FormatUint(agg.Gets, 10)},
		{"get_hits", strconv.FormatUint(agg.GetHits, 10)},
		{"get_misses", strconv.FormatUint(agg.GetMisses, 10)},
		{"cmd_set", strconv.FormatUint(agg.Sets, 10)},
		{"cmd_delete", strconv.FormatUint(agg.Deletes, 10)},
		{"cmd_touch", strconv.FormatUint(agg.Touches, 10)},
		{"curr_items", strconv.FormatUint(agg.CurrItems, 10)},
		{"bytes", strconv.FormatUint(agg.Bytes, 10)},
		{"evictions", strconv.FormatUint(agg.Evictions, 10)},
		{"expired", strconv.FormatUint(agg.Expired, 10)},
		{"hotkey_detected", strconv.FormatUint(hm.Detected, 10)},
		{"hotkey_replica_hits", strconv.FormatUint(hm.ReplicaHits, 10)},
		{"migration_state", strconv.Itoa(mm.State)},
		{"migration_resizes", strconv.FormatUint(mm.Resizes, 10)},
		{"migration_segments_moved", strconv.FormatUint(mm.SegmentsMoved, 10)},
		{"migration_keys_moved", strconv.FormatUint(mm.KeysMoved, 10)},
		{"shard_rebuilds", strconv.FormatUint(cm.Supervisor.Rebuilds, 10)},
		{"shard_rebuilt_empty", strconv.FormatUint(cm.Supervisor.RebuiltEmpty, 10)},
		{"breaker_trips", strconv.FormatUint(cm.Supervisor.BreakerTrips, 10)},
		{"breaker_fast_fails", strconv.FormatUint(cm.Supervisor.BreakerFastFails, 10)},
	}
	for sh := 0; sh < c.Shards(); sh++ {
		status := c.ShardStatuses()[sh]
		st := c.Shard(sh).Stats()
		rep.Stats = append(rep.Stats,
			[2]string{fmt.Sprintf("shard%d:curr_items", sh), strconv.FormatUint(st.CurrItems, 10)},
			[2]string{fmt.Sprintf("shard%d:cmd_get", sh), strconv.FormatUint(st.Gets, 10)},
			[2]string{fmt.Sprintf("shard%d:cmd_set", sh), strconv.FormatUint(st.Sets, 10)},
			[2]string{fmt.Sprintf("shard%d:state", sh), strconv.Itoa(int(c.State(sh)))},
			[2]string{fmt.Sprintf("shard%d:breaker", sh), status.Breaker},
			[2]string{fmt.Sprintf("shard%d:rebuilds", sh), strconv.FormatUint(status.Rebuilds, 10)},
		)
	}
	return rep
}
