package memcached

import (
	"fmt"
	"sync"
	"testing"
)

func TestSessionPoolReuse(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(0)
	defer p.Close()

	s1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(s1)
	s2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("idle session not reused")
	}
	p.Put(s2)
	if total, idle := p.Stats(); total != 1 || idle != 1 {
		t.Fatalf("stats = %d/%d", total, idle)
	}
}

func TestSessionPoolMax(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(2)
	defer p.Close()
	a, _ := p.Get()
	c, _ := p.Get()
	if _, err := p.Get(); err == nil {
		t.Fatal("pool over max should fail")
	}
	p.Put(a)
	if _, err := p.Get(); err != nil {
		t.Fatalf("get after put: %v", err)
	}
	p.Put(c)
}

func TestSessionPoolWithConcurrent(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(0)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := p.With(func(s *Session) error {
					k := []byte(fmt.Sprintf("pool-%d-%d", g, i))
					if err := s.Set(k, []byte("v"), 0, 0); err != nil {
						return err
					}
					_, _, err := s.Get(k)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total, idle := p.Stats()
	if total == 0 || idle != total {
		t.Fatalf("after quiesce: total=%d idle=%d", total, idle)
	}
	if st := b.Stats(); st.Sets != 8*200 {
		t.Fatalf("sets = %d", st.Sets)
	}
}

func TestSessionPoolClose(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(0)
	s, _ := p.Get()
	p.Close()
	if _, err := p.Get(); err == nil {
		t.Fatal("get after close should fail")
	}
	p.Put(s) // returning after close releases the session
	if total, _ := p.Stats(); total != 0 {
		t.Fatalf("total after close = %d", total)
	}
}
