package memcached

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"plibmc/internal/gatehard"
	"plibmc/internal/hodor"
	"plibmc/internal/proc"
)

func TestSessionPoolReuse(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(0)
	defer p.Close()

	s1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(s1)
	s2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("idle session not reused")
	}
	p.Put(s2)
	if total, idle := p.Stats(); total != 1 || idle != 1 {
		t.Fatalf("stats = %d/%d", total, idle)
	}
}

func TestSessionPoolMax(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(2)
	defer p.Close()
	a, _ := p.Get()
	c, _ := p.Get()
	if _, err := p.Get(); err == nil {
		t.Fatal("pool over max should fail")
	}
	p.Put(a)
	if _, err := p.Get(); err != nil {
		t.Fatalf("get after put: %v", err)
	}
	p.Put(c)
}

func TestSessionPoolWithConcurrent(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(0)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := p.With(func(s *Session) error {
					k := []byte(fmt.Sprintf("pool-%d-%d", g, i))
					if err := s.Set(k, []byte("v"), 0, 0); err != nil {
						return err
					}
					_, _, err := s.Get(k)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total, idle := p.Stats()
	if total == 0 || idle != total {
		t.Fatalf("after quiesce: total=%d idle=%d", total, idle)
	}
	if st := b.Stats(); st.Sets != 8*200 {
		t.Fatalf("sets = %d", st.Sets)
	}
}

// TestSessionPoolDiscardsReapedSession reaps a borrowed session via the
// watchdog and verifies Put discards it instead of re-pooling it. Pre-fix,
// the dead session went back on the free list and the next Get handed it
// out, poisoning every borrower with ErrSessionReaped.
func TestSessionPoolDiscardsReapedSession(t *testing.T) {
	budget := 2 * time.Millisecond
	b, err := CreateStore(Config{HeapBytes: 32 << 20, HashPower: 8, NumItemLocks: 16,
		LiveCallBudget: budget, CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	p := cp.NewSessionPool(0)
	defer p.Close()

	s, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("pk"), []byte("pv"), 0, 0); err != nil {
		t.Fatal(err)
	}

	// Reap the borrowed session: a hostile spin inside the gate plus one
	// watchdog sweep with the clock past the live-call budget.
	spinErr := make(chan error, 1)
	go func() {
		spinErr <- gatehard.HostileSpin(s.Hodor(), gatehard.SpinOpts{MaxSpin: 10 * time.Second})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !s.Hodor().InCall() {
		if time.Now().After(deadline) {
			t.Fatal("hostile call never admitted")
		}
		time.Sleep(50 * time.Microsecond)
	}
	b.Library().WatchdogSweep(time.Now().Add(budget * 5 / 2))
	<-spinErr
	if !s.Hodor().Reaped() {
		t.Fatal("session not reaped")
	}
	if _, err := gatehard.WaitHealthy(b.Library(), 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	p.Put(s)
	if total, idle := p.Stats(); idle != 0 || total != 0 {
		t.Fatalf("dead session re-pooled: total=%d idle=%d, want 0/0", total, idle)
	}
	// The next borrower gets a fresh, working session.
	s2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := s2.Get([]byte("pk")); err != nil || string(v) != "pv" {
		t.Fatalf("get on fresh session = %q, %v", v, err)
	}
	p.Put(s2)
	if total, idle := p.Stats(); total != 1 || idle != 1 {
		t.Fatalf("after recycle: total=%d idle=%d", total, idle)
	}
}

// TestSessionPoolWithDiscardsOnFatal: With must not re-pool a session whose
// callback failed with a session-fatal error (here, the process died
// mid-borrow).
func TestSessionPoolWithDiscardsOnFatal(t *testing.T) {
	b := newTestStore(t)
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	p := cp.NewSessionPool(0)
	werr := p.With(func(s *Session) error {
		cp.Kill()
		_, _, err := s.Get([]byte("k"))
		return err
	})
	if werr == nil {
		t.Fatal("call on killed process should fail")
	}
	if total, idle := p.Stats(); total != 0 || idle != 0 {
		t.Fatalf("fatal session kept: total=%d idle=%d, want 0/0", total, idle)
	}
	// Non-fatal per-key errors (a miss) must still re-pool.
	b2 := newTestStore(t)
	cp2, _ := b2.NewClientProcess(1001)
	p2 := cp2.NewSessionPool(0)
	defer p2.Close()
	if err := p2.With(func(s *Session) error {
		_, _, err := s.Get([]byte("absent"))
		return err
	}); err != ErrNotFound {
		t.Fatalf("miss = %v, want ErrNotFound", err)
	}
	if total, idle := p2.Stats(); total != 1 || idle != 1 {
		t.Fatalf("miss discarded the session: total=%d idle=%d", total, idle)
	}
}

func TestSessionPoolClose(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	p := cp.NewSessionPool(0)
	s, _ := p.Get()
	p.Close()
	if _, err := p.Get(); err == nil {
		t.Fatal("get after close should fail")
	}
	p.Put(s) // returning after close releases the session
	if total, _ := p.Stats(); total != 0 {
		t.Fatalf("total after close = %d", total)
	}
}

// Recovery-class errors are retryable, not session-fatal: a breaker
// fast-fail wraps ErrPoisoned (its cause), but the borrower's session is
// attached to the caller's process, not the dying shard — discarding it
// would churn the pool exactly when the supervisor is riding out a
// failure. Before the carve-out, sessionFatal(shardDown(...)) was true
// via the wrapped poison cause.
func TestSessionFatalClassifiesRecoveryErrors(t *testing.T) {
	retryable := []error{
		shardDown(1, ShardRebuilding), // wraps ErrPoisoned — the regression lever
		shardDown(2, ShardRecovering), // wraps ErrRecoveryTimeout
		ErrShardDown,
		ErrRecovering,
		hodor.ErrRecoveryTimeout,
		hodor.ErrOverloaded,
		fmt.Errorf("memcached: shard 3 batch: %w", shardDown(3, ShardRebuilding)),
	}
	for _, err := range retryable {
		if sessionFatal(err) {
			t.Errorf("sessionFatal(%v) = true, want retryable", err)
		}
	}
	fatal := []error{hodor.ErrPoisoned, hodor.ErrSessionReaped, &proc.ErrKilled{PID: 1}}
	for _, err := range fatal {
		if !sessionFatal(err) {
			t.Errorf("sessionFatal(%v) = false, want fatal", err)
		}
	}
	if sessionFatal(nil) || sessionFatal(ErrNotFound) {
		t.Error("nil / per-key outcomes must not be fatal")
	}
}

// With re-pools a session whose callback failed with a breaker fast-fail.
func TestSessionPoolKeepsSessionOnShardDown(t *testing.T) {
	b := newTestStore(t)
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	p := cp.NewSessionPool(0)
	defer p.Close()
	werr := p.With(func(s *Session) error {
		return shardDown(0, ShardRebuilding)
	})
	if !errors.Is(werr, ErrShardDown) {
		t.Fatalf("With = %v", werr)
	}
	if total, idle := p.Stats(); total != 1 || idle != 1 {
		t.Fatalf("shard-down discarded the session: total=%d idle=%d, want 1/1", total, idle)
	}
	// The recycled session still works.
	if err := p.With(func(s *Session) error {
		return s.Set([]byte("k"), []byte("v"), 0, 0)
	}); err != nil {
		t.Fatal(err)
	}
}
