package memcached

import (
	"errors"
	"fmt"
	"sync"

	"plibmc/internal/hodor"
	"plibmc/internal/proc"
)

// SessionPool hands out sessions to short-lived workers — e.g. HTTP
// handler goroutines — that don't have a long-lived thread of their own.
// A Session models a thread and is not safe for concurrent use; the pool
// amortizes session setup (thread creation, Hodor attach, allocator cache)
// across many brief borrowings.
type SessionPool struct {
	cp *ClientProcess

	mu     sync.Mutex
	free   []*Session
	total  int
	max    int
	closed bool
}

// NewSessionPool creates a pool that will create at most max sessions
// (0 = unlimited). Sessions are created lazily on first Get.
func (cp *ClientProcess) NewSessionPool(max int) *SessionPool {
	return &SessionPool{cp: cp, max: max}
}

// Get borrows a session, creating one if none is idle.
func (p *SessionPool) Get() (*Session, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("memcached: session pool is closed")
	}
	// Idle sessions can die while pooled (their process killed); skip and
	// release any that did rather than handing a borrower a dead session.
	for n := len(p.free); n > 0; n = len(p.free) {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		if s.Healthy() {
			p.mu.Unlock()
			return s, nil
		}
		s.Close()
		p.total--
	}
	if p.max > 0 && p.total >= p.max {
		p.mu.Unlock()
		return nil, fmt.Errorf("memcached: session pool exhausted (%d in use)", p.max)
	}
	p.total++
	p.mu.Unlock()

	s, err := p.cp.NewSession()
	if err != nil {
		p.mu.Lock()
		p.total--
		p.mu.Unlock()
		return nil, err
	}
	return s, nil
}

// Put returns a borrowed session. Sessions from other pools or processes
// must not be Put here. A session that died while borrowed — its domain
// reaped by the watchdog, or its process killed — is discarded instead of
// re-pooled: recycling it would poison every future borrower with
// ErrSessionReaped/ErrKilled.
func (p *SessionPool) Put(s *Session) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || !s.Healthy() {
		s.Close()
		p.total--
		return
	}
	p.free = append(p.free, s)
}

// With borrows a session for the duration of fn — the common pattern for
// request handlers. If fn returns a session-fatal error the session is
// discarded rather than re-pooled.
func (p *SessionPool) With(fn func(*Session) error) error {
	s, err := p.Get()
	if err != nil {
		return err
	}
	err = fn(s)
	if sessionFatal(err) {
		p.mu.Lock()
		s.Close()
		p.total--
		p.mu.Unlock()
		return err
	}
	p.Put(s)
	return err
}

// sessionFatal reports whether an error from a session operation means the
// session itself is unusable (as opposed to a per-key outcome like
// ErrNotFound or transient backpressure).
//
// Recovery-class errors are explicitly NOT fatal, and the check runs
// first because they can wrap fatal-looking causes: a tripped shard
// breaker (ErrShardDown) carries ErrPoisoned as its cause, yet the
// borrower's session is attached to the caller's process, not the dying
// shard — it stays perfectly usable once the supervisor swaps in the
// rebuilt store. Discarding it on every shard hiccup would churn the
// pool exactly when the system is trying to ride out a failure.
func sessionFatal(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrShardDown) || errors.Is(err, ErrRecovering) ||
		hodor.Retryable(err) {
		return false
	}
	var killed *proc.ErrKilled
	return errors.Is(err, hodor.ErrSessionReaped) ||
		errors.Is(err, hodor.ErrPoisoned) ||
		errors.As(err, &killed)
}

// Close releases every idle session. Sessions still borrowed are released
// when Put back.
func (p *SessionPool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, s := range p.free {
		s.Close()
		p.total--
	}
	p.free = nil
}

// Stats reports pool occupancy: total created and currently idle.
func (p *SessionPool) Stats() (total, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total, len(p.free)
}
