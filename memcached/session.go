package memcached

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/hodor"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
)

// Errors re-exported from the data plane (the memcached_return_t values).
var (
	ErrNotFound    = core.ErrNotFound
	ErrExists      = core.ErrExists
	ErrCASMismatch = core.ErrCASMismatch
	ErrNotNumeric  = core.ErrNotNumeric
	ErrKeyTooLong  = core.ErrKeyTooLong
	ErrValueTooBig = core.ErrValueTooBig
	ErrNoSpace     = core.ErrNoSpace
)

// BatchOp and BatchResult are the batched-call ABI, re-exported from the
// data plane: one ExecBatch carries many of them across the gate in a
// single trampoline crossing.
type (
	BatchOp     = core.BatchOp
	BatchResult = core.BatchResult
)

// Batch op codes, re-exported for clients of the public API.
const (
	BatchGet     = core.BatchGet
	BatchGAT     = core.BatchGAT
	BatchSet     = core.BatchSet
	BatchAdd     = core.BatchAdd
	BatchReplace = core.BatchReplace
	BatchCAS     = core.BatchCAS
	BatchAppend  = core.BatchAppend
	BatchPrepend = core.BatchPrepend
	BatchDelete  = core.BatchDelete
	BatchIncr    = core.BatchIncr
	BatchDecr    = core.BatchDecr
	BatchTouch   = core.BatchTouch
	BatchExport  = core.BatchExport  // migration read: no LRU bump, carries expiry
	BatchInstall = core.BatchInstall // migration store: preserves CAS, absolute expiry
)

// entryNames is the library's export table (HODOR_FUNC_EXPORT analog).
var entryNames = []string{
	"memcached_get", "memcached_set", "memcached_add", "memcached_replace",
	"memcached_cas", "memcached_delete", "memcached_increment",
	"memcached_decrement", "memcached_append", "memcached_prepend",
	"memcached_touch", "memcached_flush", "memcached_stat",
	"memcached_execute_batch",
}

func registerEntryPoints(lib *hodor.Library) {
	for _, n := range entryNames {
		lib.RegisterEntry(n)
	}
	lib.OnInit(func(p *proc.Process) error {
		// Runs with the store owner's effective UID: this is where the
		// real system opens and maps the K-V store's backing file with
		// permissions the client itself does not have.
		if p.EUID() != lib.OwnerUID {
			return fmt.Errorf("memcached: library init without owner credentials")
		}
		return nil
	})
}

// ClientProcess is one application process that has loaded the protected
// library: it owns a private mapping of the shared heap and a Hodor link
// state. Create sessions from it, one per client thread.
type ClientProcess struct {
	b   *Bookkeeper
	p   *proc.Process
	res *hodor.LoadResult
}

// NewClientProcess simulates launching a client application under the
// modified loader: the binary is scanned for stray wrpkru instructions,
// trampolines are linked, and library initialization runs under the store
// owner's EUID before reverting to uid.
func (b *Bookkeeper) NewClientProcess(uid int) (*ClientProcess, error) {
	p, err := proc.NewProcess(uid, b.heap, b.nextBase())
	if err != nil {
		return nil, err
	}
	res, err := (hodor.Loader{}).Load(p, hodor.Binary{Name: fmt.Sprintf("client-%d", p.ID)}, b.lib)
	if err != nil {
		return nil, err
	}
	// Register with the liveness oracle: after a Kill, this process's
	// lock-owner tokens become eligible for forced release during repair.
	b.registerProc(p)
	return &ClientProcess{b: b, p: p, res: res}, nil
}

// Process exposes the underlying simulated process (kill injection, views).
func (cp *ClientProcess) Process() *proc.Process { return cp.p }

// Kill delivers the SIGKILL analog to the process: threads inside library
// calls complete; everything else stops.
func (cp *ClientProcess) Kill() { cp.p.Kill() }

// Session is one client thread's handle on the store. All operations are
// direct function calls through Hodor trampolines (unless created with
// NewSessionNoHodor, the paper's unprotected comparison point). A Session
// is not safe for concurrent use — it models a thread.
type Session struct {
	hs     *hodor.Session
	th     *proc.Thread
	ctx    *core.Ctx
	b      *Bookkeeper
	direct bool // skip trampolines ("Plib, No Hodor")

	// tenantDom/tenantPage are this session's own protection domain (gate
	// hardening): a virtual protection key plus a page-sized arena for the
	// tenant's security-sensitive buffers, bound by the trampoline on every
	// call so sibling tenants stay mutually fenced. Torn down on Close, or
	// by the recovery sweep when the tenant dies or is reaped.
	tenantDom  *hodor.Domain
	tenantPage uint64

	fnGet    func(*proc.Thread, getArgs) (getRes, error)
	fnStore  func(*proc.Thread, storeArgs) (struct{}, error)
	fnDelete func(*proc.Thread, keyArgs) (struct{}, error)
	fnIncr   func(*proc.Thread, incrArgs) (uint64, error)
	fnPend   func(*proc.Thread, pendArgs) (struct{}, error)
	fnTouch  func(*proc.Thread, touchArgs) (struct{}, error)
	fnFlush  func(*proc.Thread, struct{}) (struct{}, error)
	fnStats  func(*proc.Thread, struct{}) (core.Stats, error)
	fnBatch  func(*proc.Thread, []core.BatchOp) ([]core.BatchResult, error)
	fnGAT    func(*proc.Thread, touchArgs) (getRes, error)

	// pending holds GetAsync requests queued for the next batched
	// crossing; inFetch breaks the drain recursion (FetchAsync itself
	// dispatches through call).
	pending []pendingGet
	inFetch bool
}

// pendingGet is one queued GetAsync request.
type pendingGet struct {
	key []byte
	cb  func(value []byte, flags uint32, err error)
}

// asyncWindow bounds how many GetAsync requests queue before the session
// drains them in one batched crossing on its own.
const asyncWindow = 64

type getArgs struct{ key []byte }
type getRes struct {
	value []byte
	flags uint32
	cas   uint64
}
type storeArgs struct {
	mode    int // 0 set, 1 add, 2 replace, 3 cas
	key     []byte
	value   []byte
	flags   uint32
	exptime int64
	cas     uint64
}
type keyArgs struct{ key []byte }
type incrArgs struct {
	key   []byte
	delta uint64
	decr  bool
}
type pendArgs struct {
	key     []byte
	data    []byte
	prepend bool
}
type touchArgs struct {
	key     []byte
	exptime int64
}

// NewSession creates a trampolined session for one client thread.
func (cp *ClientProcess) NewSession() (*Session, error) {
	return cp.newSession(false)
}

// NewSessionNoHodor creates a session that calls the library directly,
// without trampolines or protection — the paper's "Plib, No Hodor"
// configuration, used to measure the marginal cost of protection (~5%).
func (cp *ClientProcess) NewSessionNoHodor() (*Session, error) {
	return cp.newSession(true)
}

func (cp *ClientProcess) newSession(direct bool) (*Session, error) {
	th := cp.p.NewThread()
	hs, err := cp.res.Attach(th, cp.b.lib)
	if err != nil {
		return nil, err
	}
	ctx := cp.b.store.NewCtx(th.LockOwner())
	s := &Session{hs: hs, th: th, ctx: ctx, b: cp.b, direct: direct}
	if !direct && cp.b.vt != nil {
		if err := cp.b.attachTenant(s); err != nil {
			ctx.Close()
			return nil, err
		}
		// Cooperative abort: the batch dispatcher polls the watchdog's
		// abort request between operations of an over-budget batch.
		ctx.AbortCheck = hs.AbortRequested
	}
	s.fnGet = func(_ *proc.Thread, a getArgs) (getRes, error) {
		v, f, cas, err := ctx.Get(a.key)
		return getRes{v, f, cas}, err
	}
	s.fnStore = func(_ *proc.Thread, a storeArgs) (struct{}, error) {
		var err error
		switch a.mode {
		case 0:
			err = ctx.Set(a.key, a.value, a.flags, a.exptime)
		case 1:
			err = ctx.Add(a.key, a.value, a.flags, a.exptime)
		case 2:
			err = ctx.Replace(a.key, a.value, a.flags, a.exptime)
		default:
			err = ctx.CAS(a.key, a.value, a.flags, a.exptime, a.cas)
		}
		return struct{}{}, err
	}
	s.fnDelete = func(_ *proc.Thread, a keyArgs) (struct{}, error) {
		return struct{}{}, ctx.Delete(a.key)
	}
	s.fnIncr = func(_ *proc.Thread, a incrArgs) (uint64, error) {
		if a.decr {
			return ctx.Decrement(a.key, a.delta)
		}
		return ctx.Increment(a.key, a.delta)
	}
	s.fnPend = func(_ *proc.Thread, a pendArgs) (struct{}, error) {
		if a.prepend {
			return struct{}{}, ctx.Prepend(a.key, a.data)
		}
		return struct{}{}, ctx.Append(a.key, a.data)
	}
	s.fnTouch = func(_ *proc.Thread, a touchArgs) (struct{}, error) {
		return struct{}{}, ctx.Touch(a.key, a.exptime)
	}
	s.fnFlush = func(_ *proc.Thread, _ struct{}) (struct{}, error) {
		ctx.FlushAll()
		return struct{}{}, nil
	}
	s.fnStats = func(_ *proc.Thread, _ struct{}) (core.Stats, error) {
		return ctx.Store().Stats(), nil
	}
	s.fnBatch = func(_ *proc.Thread, ops []core.BatchOp) ([]core.BatchResult, error) {
		return ctx.ExecBatch(ops), nil
	}
	s.fnGAT = func(_ *proc.Thread, a touchArgs) (getRes, error) {
		v, f, cas, err := ctx.GetAndTouch(a.key, a.exptime)
		return getRes{v, f, cas}, err
	}
	return s, nil
}

// Thread exposes the session's simulated thread.
func (s *Session) Thread() *proc.Thread { return s.th }

// Ctx exposes the raw operation context (ablation benchmarks).
func (s *Session) Ctx() *core.Ctx { return s.ctx }

// Hodor exposes the underlying hodor session (gate-hardening tests drive
// the watchdog and inspect escalation through it).
func (s *Session) Hodor() *hodor.Session { return s.hs }

// TenantDomain returns this session's own protection domain, or nil when
// tenant domains are disabled (or the session is direct).
func (s *Session) TenantDomain() *hodor.Domain { return s.tenantDom }

// TenantArena returns the heap offset and size of this session's private
// arena page (0, 0 without a tenant domain).
func (s *Session) TenantArena() (off, n uint64) {
	if s.tenantDom == nil {
		return 0, 0
	}
	return s.tenantPage, shm.PageSize
}

// attachTenant equips a new session with its own protection domain: one
// virtual key from the bookkeeper's vtable and a page-sized arena carved
// from the heap and re-tagged under that key.
func (b *Bookkeeper) attachTenant(s *Session) error {
	page, err := s.ctx.AllocPage()
	if err != nil {
		return err
	}
	dom := hodor.NewVirtualDomain(b.heap, b.pt, b.vt)
	if err := dom.Protect(page, shm.PageSize); err != nil {
		b.pt.Assign(page, shm.PageSize, b.dom.Key) //nolint:errcheck
		s.ctx.FreePage(page)                       //nolint:errcheck
		return err
	}
	s.hs.Tenant = dom
	s.tenantDom = dom
	s.tenantPage = page
	// Warm the mapping and pre-sync the thread against the remap our own
	// mapping just caused, so the session's first call costs the same two
	// wrpkru as every later one (the thread's register is AllRestricted
	// here, which is valid against any generation). Skipped harmlessly if
	// every hardware key happens to be pinned right now — the first call
	// then pays one lazy sync.
	if _, err := b.vt.Bind(dom.VKey); err == nil {
		b.vt.Unbind(dom.VKey)
		s.th.SetVTGen(b.vt.Gen())
	}
	b.tenantMu.Lock()
	b.tenants[s] = struct{}{}
	b.tenantMu.Unlock()
	return nil
}

// detachTenant is the clean-teardown path (Close of a live session): the
// virtual key retires, the arena page returns to the library's key and the
// heap. Dead and reaped sessions instead go through the recovery sweep.
func (b *Bookkeeper) detachTenant(s *Session) {
	b.tenantMu.Lock()
	delete(b.tenants, s)
	b.tenantMu.Unlock()
	if err := b.vt.FreeVirtual(s.tenantDom.VKey); err != nil {
		// Still pinned — a call is somehow in flight on a closing session.
		// Force the teardown; the pin holder's Unbind becomes a no-op.
		b.vt.Revoke(s.tenantDom.VKey)
	}
	b.pt.Assign(s.tenantPage, shm.PageSize, b.dom.Key) //nolint:errcheck
	s.ctx.FreePage(s.tenantPage)                       //nolint:errcheck
}

// Healthy reports whether the session can still carry calls: its process
// is alive and its gate session has not been reaped by the watchdog. A
// session that fails this check is permanently dead — every future call
// returns ErrSessionReaped or ErrKilled — and must not be reused.
func (s *Session) Healthy() bool {
	return !s.hs.Reaped() && !s.th.Proc.Killed()
}

// Close returns the session's cached heap blocks to the shared pool and
// tears down its tenant domain. A session whose process died or that the
// watchdog reaped leaves teardown to the recovery sweep — a fenced context
// must not touch the allocator.
func (s *Session) Close() {
	if s.tenantDom != nil && !s.hs.Reaped() && !s.th.Proc.Killed() {
		s.b.detachTenant(s)
		// Cleared only on the live path: a dead session stays registered
		// in b.tenants, and the recovery sweep needs the domain pointer to
		// revoke its key and reclaim its arena page.
		s.tenantDom = nil
	}
	s.ctx.Close()
}

// call dispatches through the trampoline, or directly in No-Hodor mode.
// Queued GetAsync requests drain first, so their callbacks observe the
// store as of before this operation (program order is preserved).
// Overload rejections — gate saturation, tenant quota, hardware-key pin
// exhaustion — are backpressure, not faults: the session retries with
// exponential backoff and jitter, bounded by the recovery grace, and only
// then surfaces the typed error.
func call[A, R any](s *Session, fn func(*proc.Thread, A) (R, error), a A) (R, error) {
	if len(s.pending) > 0 && !s.inFetch {
		s.FetchAsync()
	}
	if s.direct {
		if s.th.Proc.Killed() {
			var zero R
			return zero, &proc.ErrKilled{PID: s.th.Proc.ID}
		}
		return fn(s.th, a)
	}
	r, err := hodor.Call(s.hs, fn, a)
	if err != nil && errors.Is(err, hodor.ErrOverloaded) {
		r, err = retryOverloaded(s, fn, a)
	}
	return r, err
}

// retryOverloaded spins a rejected call against transient gate overload.
// Every cause of ErrOverloaded clears when some in-flight call retires, so
// short waits win quickly in steady state; the recovery grace bounds the
// total wait for pathological cases (a hostile tenant camping on the gate —
// whom the watchdog will reap within 2x its budget anyway).
func retryOverloaded[A, R any](s *Session, fn func(*proc.Thread, A) (R, error), a A) (R, error) {
	grace := s.hs.Lib.RecoveryGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	deadline := time.Now().Add(grace)
	backoff := 2 * time.Microsecond
	for {
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff)+1)))
		if backoff < 256*time.Microsecond {
			backoff *= 2
		}
		r, err := hodor.Call(s.hs, fn, a)
		if err == nil || !errors.Is(err, hodor.ErrOverloaded) || time.Now().After(deadline) {
			return r, err
		}
	}
}

// Get retrieves the value and flags stored under key.
func (s *Session) Get(key []byte) ([]byte, uint32, error) {
	r, err := call(s, s.fnGet, getArgs{key})
	return r.value, r.flags, err
}

// Gets also returns the CAS generation, for later CAS stores.
func (s *Session) Gets(key []byte) ([]byte, uint32, uint64, error) {
	r, err := call(s, s.fnGet, getArgs{key})
	return r.value, r.flags, r.cas, err
}

// Set stores value under key unconditionally.
func (s *Session) Set(key, value []byte, flags uint32, exptime int64) error {
	_, err := call(s, s.fnStore, storeArgs{mode: 0, key: key, value: value, flags: flags, exptime: exptime})
	return err
}

// Add stores only if key is absent.
func (s *Session) Add(key, value []byte, flags uint32, exptime int64) error {
	_, err := call(s, s.fnStore, storeArgs{mode: 1, key: key, value: value, flags: flags, exptime: exptime})
	return err
}

// Replace stores only if key is present.
func (s *Session) Replace(key, value []byte, flags uint32, exptime int64) error {
	_, err := call(s, s.fnStore, storeArgs{mode: 2, key: key, value: value, flags: flags, exptime: exptime})
	return err
}

// CAS stores only if the entry's generation equals cas.
func (s *Session) CAS(key, value []byte, flags uint32, exptime int64, cas uint64) error {
	_, err := call(s, s.fnStore, storeArgs{mode: 3, key: key, value: value, flags: flags, exptime: exptime, cas: cas})
	return err
}

// Delete removes key.
func (s *Session) Delete(key []byte) error {
	_, err := call(s, s.fnDelete, keyArgs{key})
	return err
}

// Increment adds delta to a numeric value.
func (s *Session) Increment(key []byte, delta uint64) (uint64, error) {
	return call(s, s.fnIncr, incrArgs{key: key, delta: delta})
}

// Decrement subtracts delta, saturating at zero.
func (s *Session) Decrement(key []byte, delta uint64) (uint64, error) {
	return call(s, s.fnIncr, incrArgs{key: key, delta: delta, decr: true})
}

// Append concatenates data after the existing value.
func (s *Session) Append(key, data []byte) error {
	_, err := call(s, s.fnPend, pendArgs{key: key, data: data})
	return err
}

// Prepend concatenates data before the existing value.
func (s *Session) Prepend(key, data []byte) error {
	_, err := call(s, s.fnPend, pendArgs{key: key, data: data, prepend: true})
	return err
}

// Touch updates an entry's expiry.
func (s *Session) Touch(key []byte, exptime int64) error {
	_, err := call(s, s.fnTouch, touchArgs{key: key, exptime: exptime})
	return err
}

// FlushAll removes every entry.
func (s *Session) FlushAll() error {
	_, err := call(s, s.fnFlush, struct{}{})
	return err
}

// Stats returns the store's counters.
func (s *Session) Stats() (core.Stats, error) {
	return call(s, s.fnStats, struct{}{})
}

// GetAndTouch retrieves a value and updates its expiry in one call.
func (s *Session) GetAndTouch(key []byte, exptime int64) ([]byte, uint32, error) {
	r, err := call(s, s.fnGAT, touchArgs{key: key, exptime: exptime})
	return r.value, r.flags, err
}

// ExecBatch executes ops in order through a single trampoline crossing:
// one admission and one rights amplification cover the whole batch, so
// crossings-per-op falls as 1/len(ops). Results are positional; each op's
// failure lands in its own BatchResult.Err without affecting siblings.
// The returned error is the crossing's own (rejection, crash), in which
// case no results are available.
func (s *Session) ExecBatch(ops []BatchOp) ([]BatchResult, error) {
	return call(s, s.fnBatch, ops)
}

// MGet retrieves many keys through a single trampoline crossing: one
// rights amplification covers the whole batch — the protected-library
// counterpart of the socket client's pipelined quiet-get batching.
// Results are positional; missing keys have Found == false.
func (s *Session) MGet(keys [][]byte) ([]core.GetResult, error) {
	ops := make([]core.BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = core.BatchOp{Code: core.BatchGet, Key: k}
	}
	res, err := call(s, s.fnBatch, ops)
	if err != nil {
		return nil, err
	}
	out := make([]core.GetResult, len(res))
	for i := range res {
		if res[i].Err == nil {
			out[i] = core.GetResult{Value: res[i].Value, Flags: res[i].Flags, CAS: res[i].CAS, Found: true}
		}
	}
	return out, nil
}

// GetAsync queues a retrieval for the next batched crossing (§3.1's
// asynchronous API, now genuinely deferred): the callback runs when the
// session drains its queue — at FetchAsync, before the next synchronous
// operation, or automatically once asyncWindow requests accumulate.
// Callbacks run in issue order.
func (s *Session) GetAsync(key []byte, cb func(value []byte, flags uint32, err error)) {
	s.pending = append(s.pending, pendingGet{key: append([]byte(nil), key...), cb: cb})
	if len(s.pending) >= asyncWindow {
		s.FetchAsync()
	}
}

// FetchAsync drains the GetAsync queue through one batched crossing,
// invoking every queued callback in issue order. A crossing-level failure
// (rejection, crash) is delivered to every callback and returned.
func (s *Session) FetchAsync() error {
	if s.inFetch || len(s.pending) == 0 {
		return nil
	}
	s.inFetch = true
	defer func() { s.inFetch = false }()
	pend := s.pending
	s.pending = nil
	ops := make([]core.BatchOp, len(pend))
	for i := range pend {
		ops[i] = core.BatchOp{Code: core.BatchGet, Key: pend[i].key}
	}
	res, err := call(s, s.fnBatch, ops)
	if err != nil {
		for i := range pend {
			pend[i].cb(nil, 0, err)
		}
		return err
	}
	for i := range pend {
		pend[i].cb(res[i].Value, res[i].Flags, res[i].Err)
	}
	return nil
}
