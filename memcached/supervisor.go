package memcached

// Shard lifecycle supervisor.
//
// PRs 2–9 made everything short of a failed repair survivable online:
// crashes quarantine → repair → resume, shards fail independently, the
// ring reshapes live. A shard whose repair itself fails was still a
// terminal state — hodor poisons the library, `Cluster.State` reports
// ShardPoisoned forever, and clients keep paying full timeouts to a
// corpse. This file closes that gap with the same discipline the
// ring-sharing literature applies to dead peers (reap and rebuild):
//
//   - A per-cluster supervisor (SuperviseOnce under an injectable clock,
//     StartSupervisor for the background loop) watches shard health and
//     escalates a poisoned shard through a recovery ladder: detach the
//     dead store → reopen from the best checkpoint candidate (the
//     existing ImageCandidates fallback chain) → if no image verifies,
//     rebuild empty — then re-attach the replacement under the routing
//     barrier so survivor shards serve uninterrupted throughout.
//
//   - The rebuilt shard resumes in the dead store's CAS space: the old
//     heap's CAS high-water mark survives in memory even after poison
//     (CASCounter is a plain atomic load), so the replacement seeds past
//     it plus a generation gap — a CAS token minted before the crash can
//     never be re-minted after it (no ABA on retried CAS).
//
//   - A per-shard circuit breaker (closed → open on poison or a run of
//     consecutive crossing failures → half-open probe) makes the down
//     window cheap: callers get a typed, retryable error in nanoseconds
//     instead of a parked crossing, MGet/ExecBatch keep positional
//     per-shard isolation, and the proxy reports distinct
//     "SERVER_ERROR shard N recovering|rebuilding" frames.
//
// The old Bookkeeper is dropped, not Shutdown: Shutdown on a poisoned
// store writes its (suspect) heap to disk, and a newer-generation
// corrupt image would win the candidate race on the next open. Dropping
// it keeps the last good checkpoint authoritative. Stragglers still
// holding sessions on the old store get ErrPoisoned from its gate, and
// the cluster handles (ClusterClient/ClusterSession/proxy conns)
// re-attach by Bookkeeper identity on their next use.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"plibmc/internal/hodor"
	"plibmc/internal/shm"
)

// ErrShardDown is the class of every breaker-generated fast-fail: the
// key's shard is temporarily unavailable (recovering past its grace, or
// poisoned and being rebuilt) and the call was refused without paying a
// gate crossing. Retryable — the supervisor is bringing the shard back.
var ErrShardDown = errors.New("memcached: shard temporarily unavailable")

// shardDownError is the typed fast-fail. It matches ErrShardDown (the
// retryable class), and unwraps to the underlying hodor condition
// (ErrPoisoned or ErrRecoveryTimeout) so callers that already classify
// gate errors keep working unchanged.
type shardDownError struct {
	shard int
	state ShardState
	cause error
}

func (e *shardDownError) Error() string {
	return fmt.Sprintf("memcached: %s: %v", e.frame(), e.cause)
}

// frame is the operator-facing condition, also used verbatim in the
// proxy's "SERVER_ERROR <frame>" responses.
func (e *shardDownError) frame() string {
	if e.state == ShardRecovering {
		return fmt.Sprintf("shard %d recovering", e.shard)
	}
	return fmt.Sprintf("shard %d rebuilding", e.shard)
}

func (e *shardDownError) Is(target error) bool { return target == ErrShardDown }
func (e *shardDownError) Unwrap() error        { return e.cause }

// shardDown builds the typed fast-fail for shard i in the given state.
func shardDown(shard int, state ShardState) error {
	cause := hodor.ErrRecoveryTimeout
	if state == ShardPoisoned || state == ShardRebuilding {
		cause = hodor.ErrPoisoned
	}
	return &shardDownError{shard: shard, state: state, cause: cause}
}

// ShardDownFrame extracts the operator-facing condition ("shard N
// recovering|rebuilding") from a breaker fast-fail, for protocol frames
// and logs. ok is false for any other error.
func ShardDownFrame(err error) (frame string, ok bool) {
	var sde *shardDownError
	if errors.As(err, &sde) {
		return sde.frame(), true
	}
	return "", false
}

// crossingFailure reports whether a session error indicates the shard
// itself is in trouble (as opposed to a per-key miss or a client-side
// condition): poison, a crossing that crashed, or a recovery window the
// caller waited out. These feed the breaker; everything else resets it.
func crossingFailure(err error) bool {
	if err == nil {
		return false
	}
	var crash *hodor.CrashError
	return errors.Is(err, hodor.ErrPoisoned) ||
		errors.Is(err, hodor.ErrRecoveryTimeout) ||
		errors.As(err, &crash)
}

// Breaker states. The data path only ever does atomic loads/CASes on
// these; all clock-based transitions (open → half-open after the
// cooldown) belong to the supervisor, so serving threads never read a
// clock on the fast path.
const (
	breakerClosed   int32 = iota // healthy: every call passes
	breakerOpen                  // tripped: every call fails fast
	breakerHalfOpen              // cooled down: the next call probes
	breakerProbe                 // one probe in flight; others fail fast
)

func breakerStateName(s int32) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	case breakerProbe:
		return "probe"
	}
	return "unknown"
}

// shardBreaker is one shard's circuit breaker.
type shardBreaker struct {
	state  atomic.Int32
	fails  atomic.Int32 // consecutive crossing failures while closed
	reason atomic.Int32 // ShardState reported while non-closed
	// openedAt is stamped by the supervisor on its first observation of
	// the open state (0 = not yet observed); the cooldown runs on the
	// supervisor's injectable clock, never the data path's.
	openedAt atomic.Int64
	// probedAt is the same discipline for the probe state: zeroed when a
	// caller takes the probe slot, stamped by the supervisor on its first
	// observation, and a probe that outlives the cooldown without ever
	// reporting (caller died mid-crossing) is reverted to open so the
	// breaker cannot wedge in probe.
	probedAt atomic.Int64

	trips     atomic.Uint64
	fastFails atomic.Uint64
	probes    atomic.Uint64
}

// allow is the data-path admission check: nil means proceed (and report
// the outcome via report); an error is the typed fast-fail. Callers that
// cannot report MUST use allowPeek instead — a probe admitted here and
// never reported strands the breaker until the supervisor times it out.
func (br *shardBreaker) allow(shard int) error {
	switch br.state.Load() {
	case breakerClosed:
		return nil
	case breakerHalfOpen:
		if br.state.CompareAndSwap(breakerHalfOpen, breakerProbe) {
			br.probedAt.Store(0) // fresh probe: the supervisor restamps
			br.probes.Add(1)
			return nil // this caller is the probe
		}
	}
	br.fastFails.Add(1)
	return shardDown(shard, ShardState(br.reason.Load()))
}

// allowPeek is the non-probing admission check, for callers that cannot
// feed an outcome back (the proxy's direct contexts bypass the hodor
// gate, so a dispatched call produces no crossing verdict to report).
// Closed and half-open pass — a half-open breaker keeps its probe slot
// for a reporting caller — while open and an in-flight probe fail fast.
// A report-less path can therefore never strand the breaker in probe.
func (br *shardBreaker) allowPeek(shard int) error {
	switch br.state.Load() {
	case breakerClosed, breakerHalfOpen:
		return nil
	}
	br.fastFails.Add(1)
	return shardDown(shard, ShardState(br.reason.Load()))
}

// report feeds one call's outcome back. Any non-shard-level outcome
// (success or a per-key error) closes a probing breaker and clears the
// failure run; a crossing failure counts toward the trip threshold, and
// poison trips immediately.
func (br *shardBreaker) report(err error, threshold int, state ShardState) {
	if !crossingFailure(err) {
		if br.fails.Load() != 0 {
			br.fails.Store(0)
		}
		if s := br.state.Load(); s == breakerProbe || s == breakerHalfOpen {
			br.state.Store(breakerClosed)
		}
		return
	}
	if br.state.Load() == breakerProbe {
		br.reopen(state)
		return
	}
	n := br.fails.Add(1)
	if errors.Is(err, hodor.ErrPoisoned) || int(n) >= threshold {
		br.trip(state)
	}
}

// trip opens the breaker (idempotent; counts only the transition).
func (br *shardBreaker) trip(reason ShardState) {
	br.reason.Store(int32(reason))
	if br.state.Swap(breakerOpen) != breakerOpen {
		br.trips.Add(1)
		br.openedAt.Store(0) // restart the cooldown
	}
}

// reopen is a failed probe: back to open, cooldown restarted.
func (br *shardBreaker) reopen(reason ShardState) {
	br.reason.Store(int32(reason))
	br.openedAt.Store(0)
	br.state.Store(breakerOpen)
	br.trips.Add(1)
}

// close resets the breaker to closed (rebuild finished).
func (br *shardBreaker) close() {
	br.fails.Store(0)
	br.state.Store(breakerClosed)
}

// shardHealth is the supervisor's per-shard lifecycle record. Grown
// lazily and kept outside topology so it survives rebuilds and resizes.
type shardHealth struct {
	br         shardBreaker
	rebuilding atomic.Bool // a rebuild is in flight; State reports ShardRebuilding

	rebuilds        atomic.Uint64 // completed rebuilds
	rebuiltEmpty    atomic.Uint64 // rebuilds that found no loadable image
	rebuildFailures atomic.Uint64 // rebuild attempts that errored (retried next tick)
	rebuiltAtOpen   atomic.Bool   // OpenCluster degraded this shard to empty
	lastRebuildNS   atomic.Int64  // wall time of the last completed rebuild
	lastRebuildAt   atomic.Int64  // unix nanos when it completed
}

// shardHealth returns shard i's lifecycle record, growing the registry
// if needed. The fast path is one atomic load.
func (c *Cluster) shardHealth(i int) *shardHealth {
	if hs := c.health.Load(); hs != nil && i < len(*hs) {
		return (*hs)[i]
	}
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	var cur []*shardHealth
	if hs := c.health.Load(); hs != nil {
		cur = *hs
	}
	if i < len(cur) {
		return cur[i]
	}
	grown := make([]*shardHealth, i+1)
	copy(grown, cur)
	for j := len(cur); j <= i; j++ {
		grown[j] = &shardHealth{}
	}
	c.health.Store(&grown)
	return grown[i]
}

func (c *Cluster) breakerThreshold() int {
	if c.cfg.BreakerThreshold > 0 {
		return c.cfg.BreakerThreshold
	}
	return 3
}

func (c *Cluster) breakerCooldown() time.Duration {
	if c.cfg.BreakerCooldown > 0 {
		return c.cfg.BreakerCooldown
	}
	return time.Second
}

// shardAllow is the data path's pre-crossing check: one atomic bool plus
// one atomic int32 in the healthy case. Callers that get nil must hand
// the call's outcome to shardReport.
func (c *Cluster) shardAllow(i int) error {
	h := c.shardHealth(i)
	if h.rebuilding.Load() {
		h.br.fastFails.Add(1)
		return shardDown(i, ShardRebuilding)
	}
	err := h.br.allow(i)
	if err != nil && !c.supSeen.Load() {
		// No supervisor has ever attended this cluster (an embedder that
		// never calls StartSupervisor): run the clock transitions inline
		// so the breaker still half-opens after the cooldown instead of
		// fast-failing forever. Refusal path only — the healthy fast
		// path never reads a clock.
		c.breakerTick(&h.br, time.Now())
		if h.br.state.Load() == breakerHalfOpen {
			err = h.br.allow(i)
		}
	}
	return err
}

// proxyAllow is the proxy tier's pre-dispatch check. The proxy reaches
// shards through direct core contexts — no hodor gate — so a poisoned
// store would never refuse it; the explicit state check stands in for
// the gate, and trips the breaker so later dispatches skip the check's
// library load too. Admission is peek-only: proxy dispatches carry no
// crossing verdict to report, so they must never take the probe slot.
func (c *Cluster) proxyAllow(sh int) error {
	h := c.shardHealth(sh)
	if h.rebuilding.Load() {
		h.br.fastFails.Add(1)
		return shardDown(sh, ShardRebuilding)
	}
	err := h.br.allowPeek(sh)
	if err != nil && !c.supSeen.Load() {
		// Same unsupervised fallback as shardAllow; a half-opened
		// breaker passes the peek.
		c.breakerTick(&h.br, time.Now())
		if h.br.state.Load() == breakerHalfOpen {
			err = nil
		}
	}
	if err != nil {
		return err
	}
	if st := c.State(sh); st == ShardPoisoned || st == ShardRebuilding {
		h.br.trip(ShardRebuilding)
		return shardDown(sh, st)
	}
	return nil
}

// shardReport feeds one crossing's outcome into shard i's breaker.
func (c *Cluster) shardReport(i int, err error) {
	state := ShardRecovering
	if errors.Is(err, hodor.ErrPoisoned) {
		state = ShardPoisoned
	}
	c.shardHealth(i).br.report(err, c.breakerThreshold(), state)
}

// SuperviseOnce runs one supervisor pass at the given time: poisoned
// shards enter the rebuild ladder, open breakers past the cooldown go
// half-open. Tests drive it directly with a fake clock (the same
// injectable-clock discipline as WatchdogSweep); production uses
// StartSupervisor.
func (c *Cluster) SuperviseOnce(now time.Time) {
	c.supSeen.Store(true)
	top := c.top()
	for i := range top.shards {
		h := c.shardHealth(i)
		if top.shards[i].Library().Poisoned() && !h.rebuilding.Load() {
			h.br.trip(ShardRebuilding)
			if err := c.rebuildShard(i, now); err != nil {
				h.rebuildFailures.Add(1) // breaker stays open; retried next pass
			}
			continue
		}
		c.breakerTick(&h.br, now)
	}
}

// breakerTick runs the clock-based breaker transitions for one shard.
func (c *Cluster) breakerTick(br *shardBreaker, now time.Time) {
	switch br.state.Load() {
	case breakerOpen:
		opened := br.openedAt.Load()
		if opened == 0 {
			// First observation after the trip: the cooldown starts on the
			// supervisor's clock, not the data path's.
			br.openedAt.Store(now.UnixNano())
			return
		}
		if now.Sub(time.Unix(0, opened)) >= c.breakerCooldown() {
			br.state.CompareAndSwap(breakerOpen, breakerHalfOpen)
		}
	case breakerProbe:
		// A probe whose caller never reports (died mid-crossing, or
		// parked on a gate that outlived the cooldown) must not wedge
		// the breaker: revert the stale probe to open and restart the
		// cooldown. A late report from the timed-out caller finds the
		// state already open and leaves it for the next cycle.
		started := br.probedAt.Load()
		if started == 0 {
			br.probedAt.Store(now.UnixNano())
			return
		}
		if now.Sub(time.Unix(0, started)) >= c.breakerCooldown() {
			if br.state.CompareAndSwap(breakerProbe, breakerOpen) {
				br.openedAt.Store(0)
			}
		}
	}
}

// StartSupervisor starts the background lifecycle loop: one SuperviseOnce
// pass per interval on the wall clock. Idempotent while running.
func (c *Cluster) StartSupervisor(interval time.Duration) {
	c.supMu.Lock()
	defer c.supMu.Unlock()
	c.supSeen.Store(true)
	if c.supStop != nil {
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	c.supStop, c.supDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.SuperviseOnce(time.Now())
			}
		}
	}()
}

// StopSupervisor stops the background lifecycle loop and waits for the
// in-flight pass (if any) to finish.
func (c *Cluster) StopSupervisor() {
	c.supMu.Lock()
	stop, done := c.supStop, c.supDone
	c.supStop, c.supDone = nil, nil
	c.supMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// casRebuildGap is the generation bump a rebuilt shard adds past the
// dead store's CAS high-water mark. The mark is read with a plain atomic
// load while stragglers (direct proxy contexts mid-unwind) could in
// principle still be incrementing, so the gap swallows any in-flight
// mints; the result is that no CAS token observed before the crash can
// ever be re-minted by the replacement.
const casRebuildGap = 1 << 16

// rebuildShard runs the recovery ladder for one poisoned shard:
//
//	detach dead store → reopen from best checkpoint candidate →
//	(no verifying image) rebuild empty → re-attach under routeMu
//
// Survivor shards route around it the whole time (their topology entries
// are untouched until the single pointer swap). Returns with the breaker
// closed on success; on failure the breaker stays open and the next
// supervisor pass retries.
func (c *Cluster) rebuildShard(i int, now time.Time) error {
	// Exclude a concurrent resize: both reshape the topology. A live
	// migration keeps the shard set in flux — park until it finishes
	// (the poisoned shard keeps failing fast behind its open breaker).
	// Checked under resizeMu: Resize installs the migration while holding
	// the same lock, so a check before Lock() could race a Resize that
	// slips in between and leave the rebuild swapping topology mid-flight.
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	if c.mig.Load() != nil {
		return fmt.Errorf("memcached: shard %d rebuild deferred: migration in flight", i)
	}

	h := c.shardHealth(i)
	if !h.rebuilding.CompareAndSwap(false, true) {
		return nil // already in flight
	}
	defer h.rebuilding.Store(false)
	start := time.Now()

	old := c.top().shards[i]
	// Re-verify poison now that the lock is held: a caller whose
	// Poisoned() precheck passed but then queued behind a completed
	// rebuild (manual RebuildShard racing the supervisor, or two
	// supervisor passes) must not re-run the ladder on the healthy
	// replacement — detaching it would silently discard every write it
	// accepted since. Close the breaker the caller tripped and keep it.
	if lib := old.Library(); lib == nil || !lib.Poisoned() {
		h.br.close()
		return nil
	}
	// The dead store's CAS high-water mark survives poison in memory.
	preCAS := old.Store().CASCounter()
	old.StopMaintenance()
	old.StopCheckpointing()

	// Ladder rung 1: reopen from the best verifying image. OpenStore
	// walks the ImageCandidates chain (base, .a, .b — newest verifying
	// generation first) exactly as a process restart would.
	var nb *Bookkeeper
	fromImage := false
	sc := c.cfg.shardConfig(i)
	if sc.Path != "" {
		if reopened, err := OpenStore(sc); err == nil {
			nb = reopened
			fromImage = true
		}
	}
	// Ladder rung 2: no loadable image (or an in-memory shard) — rebuild
	// empty. The shard loses its data but the cluster keeps its shape.
	if nb == nil {
		created, err := createShardPastCandidates(sc)
		if err != nil {
			return fmt.Errorf("memcached: shard %d rebuild: %w", i, err)
		}
		nb = created
	}
	c.cfg.setupShard(nb, i)
	// Resume in the dead store's CAS space, bumped a generation: stale
	// tokens from before the crash can never ABA against new mints.
	seed := preCAS
	if base := shardCASBase(i); seed < base {
		seed = base
	}
	nb.Store().SeedCAS(seed + casRebuildGap)

	// Resume the background loops at the cluster's recorded cadence.
	if iv := c.maintEvery.Load(); iv > 0 {
		nb.StartMaintenance(time.Duration(iv))
	}
	if iv := c.ckptEvery.Load(); iv > 0 && sc.Path != "" {
		nb.StartCheckpointing(time.Duration(iv))
	}

	// Re-attach under the routing barrier: one write-locked pointer swap,
	// the same discipline Resize uses. Survivors never see a torn view.
	c.routeMu.Lock()
	top := c.top()
	shards := append([]*Bookkeeper(nil), top.shards...)
	shards[i] = nb
	hot := append([]*hotTracker(nil), top.hot...)
	hot[i] = newHotTracker(c.cfg.HotKeyThreshold, c.cfg.HotKeyWindow)
	c.topo.Store(&topology{ring: top.ring, shards: shards, hot: hot})
	c.routeMu.Unlock()

	// The replacement starts with a cold hot-key tracker, so a key that
	// re-heats would serve its *pre-crash* replica from the ring
	// successor. Sweep the successor's strays (replicas regenerate on
	// demand from the rebuilt primary).
	if c.cfg.HotKeyThreshold > 0 && len(shards) > 1 {
		rep := c.replicaOf(i)
		if shards[rep].Library() != nil && !shards[rep].Library().Poisoned() {
			purgeShard(shards[rep], top.ring, rep)
		}
	}

	// If the shard came back empty, persist that fact immediately: the
	// seeded generation makes this image outrank the stale candidates,
	// so a process restart agrees with the live cluster. Best-effort —
	// a disk fault here is counted by the checkpoint accounting.
	if !fromImage && sc.Path != "" {
		nb.Checkpoint() //nolint:errcheck // degraded disk must not fail the rebuild
	}

	h.br.close()
	h.rebuilds.Add(1)
	if !fromImage {
		h.rebuiltEmpty.Add(1)
	}
	h.lastRebuildNS.Store(int64(time.Since(start)))
	h.lastRebuildAt.Store(now.UnixNano())
	return nil
}

// createShardPastCandidates creates an empty shard store whose
// checkpoint generation is seeded past every on-disk image candidate, so
// its first checkpoint outranks the stale (unloadable) images instead of
// losing the best-candidate race to them on the next open. Used by the
// rebuild ladder's empty rung and by OpenCluster's degraded mode.
func createShardPastCandidates(sc Config) (*Bookkeeper, error) {
	b, err := CreateStore(sc)
	if err != nil {
		return nil, err
	}
	if sc.Path != "" {
		var gen uint64
		for _, cand := range shm.ImageCandidates(sc.Path) {
			if cand.Generation > gen {
				gen = cand.Generation
			}
		}
		b.repairReportMu.Lock()
		b.ckptGen = gen
		b.repairReportMu.Unlock()
	}
	return b, nil
}

// RebuildShard manually runs the recovery ladder for shard i (the
// /admin escape hatch; the supervisor does this automatically). It
// refuses to rebuild a shard that is not poisoned.
func (c *Cluster) RebuildShard(i int) error {
	if i < 0 || i >= len(c.top().shards) {
		return fmt.Errorf("memcached: no shard %d", i)
	}
	if !c.top().shards[i].Library().Poisoned() {
		return fmt.Errorf("memcached: shard %d is not poisoned", i)
	}
	c.shardHealth(i).br.trip(ShardRebuilding)
	return c.rebuildShard(i, time.Now())
}

// ShardStatus is one shard's lifecycle snapshot, for /admin and stats.
type ShardStatus struct {
	Shard         int        `json:"shard"`
	State         ShardState `json:"state"`
	Breaker       string     `json:"breaker"`
	Rebuilds      uint64     `json:"rebuilds"`
	RebuiltEmpty  uint64     `json:"rebuilt_empty"`
	RebuiltAtOpen bool       `json:"rebuilt_at_open"`
	BreakerTrips  uint64     `json:"breaker_trips"`
	FastFails     uint64     `json:"breaker_fast_fails"`
}

// ShardStatuses snapshots every shard's lifecycle state.
func (c *Cluster) ShardStatuses() []ShardStatus {
	n := len(c.top().shards)
	out := make([]ShardStatus, n)
	for i := 0; i < n; i++ {
		h := c.shardHealth(i)
		out[i] = ShardStatus{
			Shard:         i,
			State:         c.State(i),
			Breaker:       breakerStateName(h.br.state.Load()),
			Rebuilds:      h.rebuilds.Load(),
			RebuiltEmpty:  h.rebuiltEmpty.Load(),
			RebuiltAtOpen: h.rebuiltAtOpen.Load(),
			BreakerTrips:  h.br.trips.Load(),
			FastFails:     h.br.fastFails.Load(),
		}
	}
	return out
}

// SupervisorMetrics is the cluster-wide lifecycle counter snapshot.
type SupervisorMetrics struct {
	Rebuilds            uint64        // completed shard rebuilds
	RebuiltEmpty        uint64        // rebuilds that found no loadable image
	RebuildFailures     uint64        // attempts that errored and were retried
	RebuiltAtOpen       uint64        // shards OpenCluster degraded to empty
	BreakerTrips        uint64        // breaker closed→open transitions
	BreakerFastFails    uint64        // calls refused without a crossing
	LastRebuildDuration time.Duration // wall time of the most recent rebuild
	LastRebuildAt       time.Time     // completion time of the most recent rebuild
}

func (c *Cluster) supervisorMetrics() SupervisorMetrics {
	var m SupervisorMetrics
	var lastAt, lastNS int64
	hs := c.health.Load()
	if hs == nil {
		return m
	}
	for _, h := range *hs {
		m.Rebuilds += h.rebuilds.Load()
		m.RebuiltEmpty += h.rebuiltEmpty.Load()
		m.RebuildFailures += h.rebuildFailures.Load()
		if h.rebuiltAtOpen.Load() {
			m.RebuiltAtOpen++
		}
		m.BreakerTrips += h.br.trips.Load()
		m.BreakerFastFails += h.br.fastFails.Load()
		if at := h.lastRebuildAt.Load(); at > lastAt {
			lastAt, lastNS = at, h.lastRebuildNS.Load()
		}
	}
	if lastAt > 0 {
		m.LastRebuildAt = time.Unix(0, lastAt)
		m.LastRebuildDuration = time.Duration(lastNS)
	}
	return m
}
