package memcached

import (
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/ring"
)

// BenchmarkResizeMigration measures the live-resharding data path end to
// end: a 4-shard cluster loaded with 50 k keys resizes to 6 shards under
// a continuous single-session read workload. Reported per run:
//
//	migrate-keys/s    keys the migrator moved per second of wall time
//	moved-frac        fraction of the key population that changed shards
//	predicted-frac    ring.MovedFraction's sampled estimate for the same
//	                  ring pair — the two should agree, pinning that the
//	                  migrator moves only what the ring says moved
//	p99-steady-us     client Get p99 before the resize
//	p99-migrate-us    client Get p99 while segments stream and cut over
func BenchmarkResizeMigration(b *testing.B) {
	const nKeys = 50_000
	val := make([]byte, 128)
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		c, err := CreateCluster(ClusterConfig{
			Shards: 4,
			Store:  Config{HeapBytes: 64 << 20, HashPower: 14, NumItemLocks: 64},
		})
		if err != nil {
			b.Fatal(err)
		}
		cc, err := c.NewClientProcess(1000)
		if err != nil {
			b.Fatal(err)
		}
		s, err := cc.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		keys := make([][]byte, nKeys)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("resize-bench-%06d", i))
			if err := s.Set(keys[i], val, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		oldRing := c.Ring()

		// One latency probe, reused for the steady and migrating windows.
		rs, err := cc.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		probe := func(stop *atomic.Bool) []time.Duration {
			var lat []time.Duration
			for i := 0; !stop.Load(); i++ {
				t0 := time.Now()
				if _, _, err := rs.Get(keys[i%nKeys]); err != nil {
					b.Errorf("probe get: %v", err)
					return lat
				}
				lat = append(lat, time.Since(t0))
			}
			return lat
		}
		p99 := func(lat []time.Duration) time.Duration {
			if len(lat) == 0 {
				return 0
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			return lat[len(lat)*99/100]
		}

		// Steady-state window: as long as the migration will roughly take.
		var stop atomic.Bool
		steadyCh := make(chan []time.Duration, 1)
		go func() { steadyCh <- probe(&stop) }()
		time.Sleep(300 * time.Millisecond)
		stop.Store(true)
		steady := <-steadyCh

		b.StartTimer()
		var stopM atomic.Bool
		migCh := make(chan []time.Duration, 1)
		go func() { migCh <- probe(&stopM) }()
		start := time.Now()
		if err := c.Resize(6); err != nil {
			b.Fatal(err)
		}
		if err := c.WaitResize(120 * time.Second); err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		b.StopTimer()
		stopM.Store(true)
		migrating := <-migCh

		st := c.MigrationStatus()
		if st.Error != "" {
			b.Fatalf("migration error: %s", st.Error)
		}
		b.ReportMetric(float64(st.KeysMoved)/wall.Seconds(), "migrate-keys/s")
		b.ReportMetric(float64(st.KeysMoved)/nKeys, "moved-frac")
		b.ReportMetric(ring.MovedFraction(oldRing, c.Ring(), 20_000), "predicted-frac")
		b.ReportMetric(float64(p99(steady).Microseconds()), "p99-steady-us")
		b.ReportMetric(float64(p99(migrating).Microseconds()), "p99-migrate-us")
		c.Shutdown()
	}
}
