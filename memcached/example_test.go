package memcached_test

import (
	"errors"
	"fmt"

	"plibmc/memcached"
)

// The canonical lifecycle: a bookkeeper creates the store, a client
// process loads the library, a session performs direct calls.
func Example() {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20})
	if err != nil {
		panic(err)
	}
	defer book.Shutdown()

	app, err := book.NewClientProcess(1000)
	if err != nil {
		panic(err)
	}
	sess, err := app.NewSession()
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	sess.Set([]byte("answer"), []byte("42"), 0, 0)
	v, _, _ := sess.Get([]byte("answer"))
	fmt.Println(string(v))
	// Output: 42
}

// Sessions surface memcached's conditional stores directly.
func ExampleSession_cas() {
	book, _ := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20})
	defer book.Shutdown()
	app, _ := book.NewClientProcess(1000)
	sess, _ := app.NewSession()
	defer sess.Close()

	sess.Set([]byte("k"), []byte("v1"), 0, 0)
	_, _, cas, _ := sess.Gets([]byte("k"))

	// A stale generation is rejected; the current one succeeds.
	err := sess.CAS([]byte("k"), []byte("v2"), 0, 0, cas+1)
	fmt.Println(errors.Is(err, memcached.ErrCASMismatch))
	err = sess.CAS([]byte("k"), []byte("v2"), 0, 0, cas)
	fmt.Println(err == nil)
	// Output:
	// true
	// true
}

// MGet retrieves a whole batch through one trampoline crossing.
func ExampleSession_MGet() {
	book, _ := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20})
	defer book.Shutdown()
	app, _ := book.NewClientProcess(1000)
	sess, _ := app.NewSession()
	defer sess.Close()

	sess.Set([]byte("a"), []byte("1"), 0, 0)
	sess.Set([]byte("c"), []byte("3"), 0, 0)
	res, _ := sess.MGet([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	for i, r := range res {
		fmt.Printf("%d %v %q\n", i, r.Found, r.Value)
	}
	// Output:
	// 0 true "1"
	// 1 false ""
	// 2 true "3"
}

// A pool hands sessions to short-lived workers.
func ExampleSessionPool() {
	book, _ := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20})
	defer book.Shutdown()
	app, _ := book.NewClientProcess(1000)
	pool := app.NewSessionPool(4)
	defer pool.Close()

	err := pool.With(func(s *memcached.Session) error {
		return s.Set([]byte("from-pool"), []byte("yes"), 0, 0)
	})
	fmt.Println(err == nil)
	// Output: true
}

// TestTwoStoresCoexist: Ralloc "supports the ability to have multiple
// shared heaps" — two independent stores live side by side in one program
// with no cross-talk.
func ExampleCreateStore_twoStores() {
	s1, _ := memcached.CreateStore(memcached.Config{HeapBytes: 8 << 20})
	s2, _ := memcached.CreateStore(memcached.Config{HeapBytes: 8 << 20})
	defer s1.Shutdown()
	defer s2.Shutdown()

	cp1, _ := s1.NewClientProcess(1000)
	cp2, _ := s2.NewClientProcess(1000)
	a, _ := cp1.NewSession()
	b, _ := cp2.NewSession()
	defer a.Close()
	defer b.Close()

	a.Set([]byte("k"), []byte("store-one"), 0, 0)
	b.Set([]byte("k"), []byte("store-two"), 0, 0)
	va, _, _ := a.Get([]byte("k"))
	vb, _, _ := b.Get([]byte("k"))
	fmt.Println(string(va), string(vb))
	// Output: store-one store-two
}
