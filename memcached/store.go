// Package memcached is the public API of the protected-library memcached:
// the paper's system as a downstream user consumes it.
//
// A store is created (or reopened from its backing file) by a bookkeeping
// process — see Bookkeeper — which owns the shared heap, runs maintenance
// (eviction, expiry, optional resizing), and flushes the heap back to the
// file on shutdown. Client processes attach with NewClientProcess, which
// runs the Hodor loader: it scans the client binary for stray wrpkru
// instructions, links the library's trampolines, and runs libmemcached
// initialization under the store owner's effective UID. Each client thread
// then opens a Session and performs K-V operations as direct, trampolined
// function calls into the library — no sockets, no server threads.
//
// Two APIs are provided, as in §3.1 of the paper: the Session methods here
// (the new API, no memcached_st), and package memcached/compat (a drop-in
// libmemcached-style API that accepts and ignores connection configuration,
// and can be switched between the protected library and a socket backend).
package memcached

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/hodor"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

// LibraryName is the protected library's name in loader output.
const LibraryName = "libmemcached-plib"

// Config configures a store.
type Config struct {
	// HeapBytes is the shared heap size (the paper gave Ralloc 60 GB;
	// scale to taste). Default 64 MiB.
	HeapBytes uint64
	// Path is the backing file. Empty means in-memory only (no Flush).
	Path string
	// OwnerUID is the store owner; library initialization runs with this
	// effective UID (paper §3.3). Default 0.
	OwnerUID int
	// HashPower, NumLRUs, MemLimit, FixedSize, NumItemLocks mirror the
	// core store options; zero values choose defaults.
	HashPower    uint
	NumLRUs      uint64
	NumItemLocks uint64
	MemLimit     uint64
	FixedSize    bool
	// LatencySampleEvery is the per-context latency sampling period
	// (1 = record every operation); zero chooses the core default.
	// DisableLatency turns recording off entirely (the histogram matrix is
	// still allocated so the heap layout is identical either way).
	LatencySampleEvery uint64
	DisableLatency     bool
	// CallTimeout bounds in-library execution for killed processes.
	CallTimeout time.Duration
	// RecoveryGrace bounds both how long a call blocks while the store
	// is being repaired and how long the repair pass waits for surviving
	// calls to drain. Zero means hodor's default (5s).
	RecoveryGrace time.Duration
	// DisableRecovery restores the paper's behaviour: a crash inside the
	// library permanently poisons it instead of triggering online repair.
	DisableRecovery bool

	// LiveCallBudget is the per-call execution budget for live sessions
	// (gate hardening): past it the watchdog escalates warn → abort-request
	// → reap+repair, so a tenant spinning inside the gate is evicted
	// instead of wedging everyone. Zero disables live-deadline enforcement.
	LiveCallBudget time.Duration
	// MaxInFlight caps concurrently admitted calls across all tenants;
	// excess calls fail fast with hodor.ErrOverloaded (retryable
	// backpressure). Zero means unlimited.
	MaxInFlight int
	// TenantQuota caps concurrently admitted calls per client process, so
	// one noisy tenant cannot starve its siblings of gate slots. Zero
	// means unlimited.
	TenantQuota int
	// DisableTenantDomains turns off per-session protection domains (each
	// trampolined session otherwise gets its own virtual protection key
	// and a page-sized arena for security-sensitive buffers, isolating
	// tenants from each other and not just from the application).
	DisableTenantDomains bool
}

// Bookkeeper is the bookkeeping process: it creates or reopens the store,
// keeps it healthy, and flushes it on shutdown. It "remains alive as long
// as its K-V store is in use."
type Bookkeeper struct {
	cfg     Config
	heap    *shm.Heap
	pt      *pku.PageTable
	dom     *hodor.Domain
	lib     *hodor.Library
	alloc   *ralloc.Allocator
	store   *core.Store
	proc    *proc.Process
	maint   *core.Maintainer
	baseSeq atomic.Uint64

	// vt multiplexes per-tenant virtual protection keys onto the hardware
	// keys left over after the library's own; tenantMu guards the registry
	// of sessions holding a tenant domain, which the recovery sweep walks
	// to tear down domains of dead or reaped tenants.
	vt       *pku.VTable
	tenantMu sync.Mutex
	tenants  map[*Session]struct{}

	// repairMu serializes the mutually exclusive heavyweight passes:
	// structural repair, maintenance, and checkpointing.
	repairMu sync.Mutex
	// procMu guards the process registry behind the liveness oracle.
	procMu sync.Mutex
	procs  map[int]*proc.Process

	// ckptGen is the generation of the most recent durable image; the next
	// checkpoint writes ckptGen+1. Guarded by repairMu (checkpoints are
	// serialized through it).
	ckptGen uint64

	repairReportMu sync.Mutex
	lastRepair     core.RepairReport
	repairs        int
	// Checkpoint accounting (exported through the metrics plane).
	ckpts         int
	ckptFailures  int
	ckptLastErr   string
	ckptLastErrAt time.Time
	ckptLastGen   uint64
	ckptLastTime  time.Duration
	ckptLastAt    time.Time
	// Cumulative recovery-event counters across all repair passes, and the
	// wall-clock cost of the most recent quarantine→repair→resume cycle.
	locksBroken    int
	readersRetired int
	histsRepaired  int
	lastRepairTime time.Duration
	lastRepairAt   time.Time

	stopMaint chan struct{}
	maintDone chan struct{}
	stopCkpt  chan struct{}
	ckptDone  chan struct{}
}

func (c *Config) fill() {
	if c.HeapBytes == 0 {
		c.HeapBytes = 64 << 20
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = time.Second
	}
}

// CreateStore formats a fresh store.
func CreateStore(cfg Config) (*Bookkeeper, error) {
	cfg.fill()
	heap := shm.New(cfg.HeapBytes)
	alloc, err := ralloc.Format(heap)
	if err != nil {
		return nil, err
	}
	store, err := core.Create(alloc, core.Options{
		HashPower:          cfg.HashPower,
		NumLRUs:            cfg.NumLRUs,
		NumItemLocks:       cfg.NumItemLocks,
		MemLimit:           cfg.MemLimit,
		FixedSize:          cfg.FixedSize,
		LatencySampleEvery: cfg.LatencySampleEvery,
		DisableLatency:     cfg.DisableLatency,
	})
	if err != nil {
		return nil, err
	}
	return newBookkeeper(cfg, heap, alloc, store)
}

// OpenStore reloads a store from its backing file — the restart path: the
// contents are intact because everything in the heap is position
// independent. All image slots for the path (the base file plus the .a/.b
// checkpoint slots) are considered, newest verifying generation first; a
// candidate that fails checksum validation or semantic verification
// (allocator fsck, store attach) is skipped in favour of the next-newest,
// so a crash mid-checkpoint or a decayed newest image costs only the
// delta back to the previous checkpoint.
func OpenStore(cfg Config) (*Bookkeeper, error) {
	cfg.fill()
	if cfg.Path == "" {
		return nil, fmt.Errorf("memcached: OpenStore requires a backing file path")
	}
	cands := shm.ImageCandidates(cfg.Path)
	if len(cands) == 0 {
		return nil, fmt.Errorf("memcached: no heap image found at %s", cfg.Path)
	}
	var errs []string
	for _, cand := range cands {
		b, err := openCandidate(cfg, cand)
		if err == nil {
			return b, nil
		}
		errs = append(errs, fmt.Sprintf("%s: %v", cand.Path, err))
	}
	return nil, fmt.Errorf("memcached: no heap image for %s verified: %s",
		cfg.Path, strings.Join(errs, "; "))
}

// openCandidate runs one image candidate through the full validation
// chain: checksum-verified load, allocator fsck, store attach.
func openCandidate(cfg Config, cand shm.Candidate) (*Bookkeeper, error) {
	if cand.Err != nil {
		return nil, cand.Err
	}
	heap, info, err := shm.LoadImage(cand.Path)
	if err != nil {
		return nil, err
	}
	alloc, err := ralloc.Open(heap)
	if err != nil {
		return nil, err
	}
	// fsck the reloaded heap before any client touches it.
	if _, err := alloc.Check(); err != nil {
		return nil, fmt.Errorf("memcached: reloaded heap failed verification: %w", err)
	}
	store, err := core.Attach(alloc)
	if err != nil {
		return nil, err
	}
	// A checkpoint image carries a raised quiesce barrier; no operation
	// from the previous life survives a reload, so clear the gate.
	store.ResetGate()
	b, err := newBookkeeper(cfg, heap, alloc, store)
	if err != nil {
		return nil, err
	}
	b.ckptGen = info.Generation
	return b, nil
}

func newBookkeeper(cfg Config, heap *shm.Heap, alloc *ralloc.Allocator, store *core.Store) (*Bookkeeper, error) {
	pt := pku.NewPageTable(heap)
	dom, err := hodor.NewDomain(heap, pt)
	if err != nil {
		return nil, err
	}
	// The entire Ralloc heap is library-private: application code cannot
	// touch any of it outside a trampolined call.
	if err := dom.ProtectAll(); err != nil {
		return nil, err
	}
	lib := hodor.NewLibrary(LibraryName, cfg.OwnerUID, dom)
	lib.CallTimeout = cfg.CallTimeout
	lib.RecoveryGrace = cfg.RecoveryGrace
	lib.LiveCallBudget = cfg.LiveCallBudget
	lib.MaxInFlight = cfg.MaxInFlight
	lib.TenantQuota = cfg.TenantQuota
	registerEntryPoints(lib)

	b := &Bookkeeper{
		cfg: cfg, heap: heap, pt: pt, dom: dom, lib: lib,
		alloc: alloc, store: store,
		procs:   make(map[int]*proc.Process),
		tenants: make(map[*Session]struct{}),
	}
	if !cfg.DisableTenantDomains {
		// Per-tenant protection domains multiplex over the hardware keys
		// the library does not use; the vtable reserves one more as the
		// fence backing unmapped tenant keys.
		vt, err := pku.NewVTable(pt)
		if err != nil {
			return nil, err
		}
		b.vt = vt
	}
	b.baseSeq.Store(1)
	bkProc, err := proc.NewProcess(cfg.OwnerUID, heap, b.nextBase())
	if err != nil {
		return nil, err
	}
	b.proc = bkProc
	b.registerProc(bkProc)
	b.maint = store.NewMaintainer(bkProc.NewThread().LockOwner())
	if !cfg.DisableRecovery {
		lib.OnRecover(b.repairStore)
		store.SetOwnerLiveness(func(token uint64) bool { return !b.ownerDefunct(token) })
	}
	return b, nil
}

// nextBase hands out a distinct page-aligned virtual base for each process
// mapping, so no two processes see the heap at the same address.
func (b *Bookkeeper) nextBase() uint64 {
	n := b.baseSeq.Add(1)
	span := (b.heap.Size() + shm.PageSize) &^ uint64(shm.PageSize-1)
	return 0x7000_0000_0000 + n*span
}

// Store exposes the underlying core store (stats, clock injection).
func (b *Bookkeeper) Store() *core.Store { return b.store }

// Allocator exposes the Ralloc handle (capacity queries).
func (b *Bookkeeper) Allocator() *ralloc.Allocator { return b.alloc }

// Library exposes the Hodor library handle.
func (b *Bookkeeper) Library() *hodor.Library { return b.lib }

// VTable exposes the per-tenant protection-key table (nil when tenant
// domains are disabled). Enforcement tests use it to inspect mappings.
func (b *Bookkeeper) VTable() *pku.VTable { return b.vt }

// Domain exposes the library's protection domain (guarded heap access for
// enforcement tests).
func (b *Bookkeeper) Domain() *hodor.Domain { return b.dom }

// Stats returns a snapshot of the store's counters.
func (b *Bookkeeper) Stats() core.Stats { return b.store.Stats() }

// RunMaintenanceOnce performs one cleaning pass (eviction to the watermark,
// expiry sweep, resize check) and a watchdog sweep over in-flight calls.
// While the store is quarantined for repair the cleaning pass is skipped
// (the repair coordinator owns the heap); a maintenance pass that panics
// — the bookkeeper's own thread faulting inside library state — is
// converted into a recovery cycle like any client crash, with a fresh
// maintainer replacing the wreckage.
func (b *Bookkeeper) RunMaintenanceOnce() core.MaintReport {
	b.lib.WatchdogSweep(time.Now())
	if b.lib.Recovering() || b.lib.Poisoned() {
		return core.MaintReport{}
	}
	b.repairMu.Lock()
	defer b.repairMu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			token := b.maint.Ctx().Owner()
			b.maint = b.store.NewMaintainer(b.proc.NewThread().LockOwner())
			b.lib.TriggerRecovery(token, r)
		}
	}()
	return b.maint.RunOnce()
}

// StartMaintenance runs maintenance on an interval until StopMaintenance.
func (b *Bookkeeper) StartMaintenance(interval time.Duration) {
	if b.stopMaint != nil {
		return
	}
	b.stopMaint = make(chan struct{})
	b.maintDone = make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		defer close(b.maintDone)
		for {
			select {
			case <-t.C:
				b.RunMaintenanceOnce()
			case <-b.stopMaint:
				return
			}
		}
	}()
}

// StopMaintenance stops the background maintenance loop.
func (b *Bookkeeper) StopMaintenance() {
	if b.stopMaint == nil {
		return
	}
	close(b.stopMaint)
	<-b.maintDone
	b.stopMaint, b.maintDone = nil, nil
}

// Shutdown stops maintenance and checkpointing and writes a final
// checkpoint image (if a backing file is configured), so a subsequent
// OpenStore resumes with contents intact. The final image goes through the
// same generation-stamped machinery as live checkpoints, so it is always
// the newest generation on disk.
func (b *Bookkeeper) Shutdown() error {
	b.StopMaintenance()
	b.StopCheckpointing()
	if b.cfg.Path == "" {
		return nil
	}
	if b.lib.Poisoned() {
		// The crash that poisoned the library may have wedged the gate;
		// write the image without quiescing (the paper's shutdown-flush
		// behaviour) and let the verified-candidate fallback on reopen
		// decide whether it is usable.
		gen := b.ckptGen + 1
		if err := b.heap.WriteImage(shm.CheckpointSlot(b.cfg.Path, gen), gen); err != nil {
			return err
		}
		b.ckptGen = gen
		return nil
	}
	return b.Checkpoint()
}
