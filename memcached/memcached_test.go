package memcached

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"plibmc/internal/client"
	"plibmc/internal/proc"
)

func newTestStore(t testing.TB) *Bookkeeper {
	t.Helper()
	b, err := CreateStore(Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newTestSession(t testing.TB, b *Bookkeeper) *Session {
	t.Helper()
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSessionBasicOps(t *testing.T) {
	b := newTestStore(t)
	s := newTestSession(t, b)

	if err := s.Set([]byte("k"), []byte("v"), 3, 0); err != nil {
		t.Fatal(err)
	}
	v, flags, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v" || flags != 3 {
		t.Fatalf("get = %q %d %v", v, flags, err)
	}
	if _, _, err := s.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	if err := s.Add([]byte("k"), []byte("x"), 0, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("add = %v", err)
	}
	if err := s.Replace([]byte("k"), []byte("v2"), 0, 0); err != nil {
		t.Fatal(err)
	}
	_, _, cas, err := s.Gets([]byte("k"))
	if err != nil || cas == 0 {
		t.Fatalf("gets cas = %d, %v", cas, err)
	}
	if err := s.CAS([]byte("k"), []byte("v3"), 0, 0, cas+1); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale cas = %v", err)
	}
	if err := s.CAS([]byte("k"), []byte("v3"), 0, 0, cas); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("k"), []byte("+")); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepend([]byte("k"), []byte("-")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get([]byte("k"))
	if string(v) != "-v3+" {
		t.Fatalf("value = %q", v)
	}
	s.Set([]byte("n"), []byte("41"), 0, 0)
	if n, err := s.Increment([]byte("n"), 1); err != nil || n != 42 {
		t.Fatalf("incr = %d, %v", n, err)
	}
	if n, err := s.Decrement([]byte("n"), 100); err != nil || n != 0 {
		t.Fatalf("decr = %d, %v", n, err)
	}
	if err := s.Touch([]byte("k"), 9999); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gets == 0 || st.Sets == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get([]byte("n")); !errors.Is(err, ErrNotFound) {
		t.Fatal("flush did not clear")
	}
}

// GetAsync queues; the callback runs at the next drain point — FetchAsync,
// a synchronous operation, or the asyncWindow auto-drain — through one
// batched crossing for the whole queue (§3.1's asynchronous API).
func TestAsyncCallbackBatched(t *testing.T) {
	b := newTestStore(t)
	s := newTestSession(t, b)
	s.Set([]byte("k0"), []byte("async0"), 0, 0)
	s.Set([]byte("k1"), []byte("async1"), 0, 0)
	var order []string
	for i := 0; i < 2; i++ {
		i := i
		s.GetAsync([]byte{byte('k'), byte('0' + i)}, func(v []byte, flags uint32, err error) {
			order = append(order, string(v))
			if err != nil || string(v) != fmt.Sprintf("async%d", i) {
				t.Errorf("callback %d got %q, %v", i, v, err)
			}
		})
	}
	if len(order) != 0 {
		t.Fatal("callbacks ran before a drain point")
	}
	before := b.Library().Metrics().Crossings
	if err := s.FetchAsync(); err != nil {
		t.Fatal(err)
	}
	if after := b.Library().Metrics().Crossings; after != before+1 {
		t.Fatalf("drain of 2 queued gets took %d crossings, want 1", after-before)
	}
	if len(order) != 2 || order[0] != "async0" || order[1] != "async1" {
		t.Fatalf("callbacks ran as %q, want issue order", order)
	}
	// A synchronous operation is also a drain point: queued callbacks run
	// before it so program order is preserved.
	ran := false
	s.GetAsync([]byte("k0"), func([]byte, uint32, error) { ran = true })
	if _, _, err := s.Get([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("synchronous Get did not drain the async queue first")
	}
}

// MGet rides the batch path: one trampoline crossing covers the whole key
// set, not one per key (ISSUE 6 satellite).
func TestMGetSingleCrossing(t *testing.T) {
	b := newTestStore(t)
	s := newTestSession(t, b)
	const n = 64
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mk%02d", i))
		if i%2 == 0 {
			if err := s.Set(keys[i], []byte(fmt.Sprintf("val%02d", i)), 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := b.Library().Metrics().Crossings
	res, err := s.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	after := b.Library().Metrics().Crossings
	if after-before != 1 {
		t.Fatalf("MGet of %d keys took %d crossings, want 1", n, after-before)
	}
	for i, r := range res {
		if want := i%2 == 0; r.Found != want {
			t.Fatalf("key %d found=%v, want %v", i, r.Found, want)
		}
		if r.Found && string(r.Value) != fmt.Sprintf("val%02d", i) {
			t.Fatalf("key %d value = %q", i, r.Value)
		}
	}
}

func TestCrossProcessSharing(t *testing.T) {
	// Two independent client processes (distinct UIDs, distinct heap
	// bases) share one store through the protected library.
	b := newTestStore(t)
	cp1, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := b.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	if cp1.Process().View().Base() == cp2.Process().View().Base() {
		t.Fatal("processes should map the heap at different addresses")
	}
	s1, _ := cp1.NewSession()
	s2, _ := cp2.NewSession()
	defer s1.Close()
	defer s2.Close()
	if err := s1.Set([]byte("shared"), []byte("hello from p1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, err := s2.Get([]byte("shared"))
	if err != nil || string(v) != "hello from p1" {
		t.Fatalf("p2 sees %q, %v", v, err)
	}
}

func TestProtectionOutsideLibrary(t *testing.T) {
	// Application code cannot read the store's heap directly; the same
	// bytes are readable from inside a library call.
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	s, _ := cp.NewSession()
	defer s.Close()
	s.Set([]byte("secret"), []byte("cleartext"), 0, 0)

	g := b.Library().Domain.Guard()
	th := s.Thread()
	if _, err := g.Load64(th.PKRU(), 0); err == nil {
		t.Fatal("application thread read protected heap outside a call")
	}
	buf := make([]byte, 64)
	if err := g.ReadBytes(th.PKRU(), 4096, buf); err == nil {
		t.Fatal("application thread read heap pages outside a call")
	}
}

func TestEntryPointsRegistered(t *testing.T) {
	b := newTestStore(t)
	entries := b.Library().Entries()
	if len(entries) < len(entryNames) {
		t.Fatalf("entries = %v", entries)
	}
}

func TestLoaderRejectsWrongOwnerInit(t *testing.T) {
	// Library init must observe the owner's EUID; the registered OnInit
	// enforces it, so a tampered loader path would fail.
	b := newTestStore(t)
	if _, err := b.NewClientProcess(2000); err != nil {
		t.Fatalf("legitimate load should succeed: %v", err)
	}
}

func TestKilledClientCallCompletes(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	s, _ := cp.NewSession()
	defer s.Close()
	s.Set([]byte("k"), []byte("before kill"), 0, 0)
	cp.Kill()
	// New calls are refused with the kill error.
	if err := s.Set([]byte("k2"), []byte("x"), 0, 0); err == nil {
		t.Fatal("killed process should not start new calls")
	}
	// Another process still sees consistent data: no locks were leaked.
	cp2, _ := b.NewClientProcess(1001)
	s2, _ := cp2.NewSession()
	defer s2.Close()
	v, _, err := s2.Get([]byte("k"))
	if err != nil || string(v) != "before kill" {
		t.Fatalf("store corrupted by kill: %q, %v", v, err)
	}
}

func TestKillDuringInFlightCall(t *testing.T) {
	// A thread killed mid-call completes its operation (Hodor guarantee);
	// the store stays consistent under concurrent load.
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	victim, _ := cp.NewSession()

	cp2, _ := b.NewClientProcess(1001)
	worker, _ := cp2.NewSession()
	defer worker.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Many sets; the kill lands somewhere in the middle.
		for i := 0; i < 2000; i++ {
			if err := victim.Set([]byte(fmt.Sprintf("v-%d", i)), []byte("data"), 0, 0); err != nil {
				return // the kill took effect between calls
			}
		}
	}()
	time.Sleep(time.Millisecond)
	cp.Kill()
	wg.Wait()

	// Library must not be poisoned: the victim died between calls, never
	// inside one.
	if b.Library().Poisoned() {
		t.Fatal("kill outside library code must not poison the store")
	}
	// The other process can operate on everything.
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("v-%d", i))
		_, _, err := worker.Get(k)
		if err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("key %s: %v", k, err)
		}
	}
	if err := worker.Set([]byte("after"), []byte("fine"), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNoHodorSessionMatchesSemantics(t *testing.T) {
	b := newTestStore(t)
	cp, _ := b.NewClientProcess(1000)
	s, _ := cp.NewSessionNoHodor()
	defer s.Close()
	if err := s.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("no-hodor get = %q, %v", v, err)
	}
	// No wrpkru executions should have occurred for these two calls.
	if n := cp.Process().WRPKRUCount(); n != 0 {
		t.Fatalf("no-hodor session executed wrpkru %d times", n)
	}
	s2, _ := cp.NewSession()
	defer s2.Close()
	s2.Get([]byte("k"))
	if n := cp.Process().WRPKRUCount(); n != 2 {
		t.Fatalf("trampolined get should wrpkru twice, saw %d", n)
	}
}

func TestShutdownAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.img")
	b, err := CreateStore(Config{HeapBytes: 8 << 20, Path: path, HashPower: 9, NumItemLocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t, b)
	for i := 0; i < 200; i++ {
		if err := s.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := b.Shutdown(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenStore(Config{HeapBytes: 8 << 20, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestSession(t, b2)
	for i := 0; i < 200; i++ {
		v, _, err := s2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("key %d after reopen: %q, %v", i, v, err)
		}
	}
	// OpenStore without a path is an error; with a missing file too.
	if _, err := OpenStore(Config{}); err == nil {
		t.Fatal("OpenStore without path should fail")
	}
	if _, err := OpenStore(Config{Path: filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Fatal("OpenStore of missing file should fail")
	}
}

func TestMaintenanceLoop(t *testing.T) {
	b := newTestStore(t)
	now := int64(1000)
	b.Store().SetClock(func() int64 { return now })
	s := newTestSession(t, b)
	for i := 0; i < 50; i++ {
		s.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0, 10)
	}
	now += 100
	rep := b.RunMaintenanceOnce()
	if rep.Expired != 50 {
		t.Fatalf("maintenance expired %d, want 50", rep.Expired)
	}
	b.StartMaintenance(5 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	b.StopMaintenance()
	// Idempotent stop.
	b.StopMaintenance()
}

func TestHybridRemoteInterface(t *testing.T) {
	// Paper §6: remote clients over sockets, local clients via Hodor,
	// one store.
	b := newTestStore(t)
	sock := filepath.Join(t.TempDir(), "hybrid.sock")
	rs, err := b.ServeRemote("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	local := newTestSession(t, b)
	if err := local.Set([]byte("from-local"), []byte("via hodor"), 0, 0); err != nil {
		t.Fatal(err)
	}

	for _, proto := range []client.Protocol{client.Binary, client.ASCII} {
		remote, err := client.Dial("unix", sock, proto)
		if err != nil {
			t.Fatal(err)
		}
		v, _, _, err := remote.Get([]byte("from-local"))
		if err != nil || string(v) != "via hodor" {
			t.Fatalf("remote (proto %d) sees %q, %v", proto, v, err)
		}
		if err := remote.Set([]byte("from-remote"), []byte("via socket"), 0, 0); err != nil {
			t.Fatal(err)
		}
		remote.Close()
	}
	v, _, err := local.Get([]byte("from-remote"))
	if err != nil || string(v) != "via socket" {
		t.Fatalf("local sees %q, %v", v, err)
	}
}

// Pipelined ASCII commands over the hybrid socket ride one batched
// dispatch: back-to-back commands and multi-key gets batch for free.
func TestHybridPipelineBatches(t *testing.T) {
	b := newTestStore(t)
	sock := filepath.Join(t.TempDir(), "pipeline.sock")
	rs, err := b.ServeRemote("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	c, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before, err := newTestSession(t, b).Stats()
	if err != nil {
		t.Fatal(err)
	}
	// One write carries a whole pipeline: two sets, a multi-key get, an
	// incr on a non-numeric value (per-op error isolation), and a miss.
	pipeline := "set pa 0 0 2\r\nv1\r\n" +
		"set pb 0 0 2\r\nv2\r\n" +
		"get pa pb\r\n" +
		"incr pa 1\r\n" +
		"get nothere\r\n"
	if _, err := c.Write([]byte(pipeline)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(c)
	// VALUE lines end with the item's CAS, which varies; match by prefix.
	want := []string{
		"STORED", "STORED",
		"VALUE pa 0 2", "v1", "VALUE pb 0 2", "v2", "END",
		"CLIENT_ERROR cannot increment or decrement non-numeric value",
		"END",
	}
	for i, w := range want {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		got := strings.TrimRight(line, "\r\n")
		if !strings.HasPrefix(got, w) {
			t.Fatalf("reply %d = %q, want prefix %q", i, got, w)
		}
	}
	after, err := newTestSession(t, b).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Batches == before.Batches {
		t.Fatal("pipelined commands did not ride a batched dispatch")
	}
	// 2 sets + 2 get keys + incr + miss = 6 ops in the batch.
	if n := after.BatchedOps - before.BatchedOps; n < 6 {
		t.Fatalf("batched ops = %d, want >= 6", n)
	}
}

func TestConcurrentSessionsManyProcesses(t *testing.T) {
	b, err := CreateStore(Config{HeapBytes: 64 << 20, HashPower: 12, NumItemLocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	const procs = 4
	const threadsPer = 2
	const iters = 1500
	var wg sync.WaitGroup
	errCh := make(chan error, procs*threadsPer)
	for p := 0; p < procs; p++ {
		cp, err := b.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for th := 0; th < threadsPer; th++ {
			s, err := cp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(id int, s *Session) {
				defer wg.Done()
				defer s.Close()
				for i := 0; i < iters; i++ {
					k := []byte(fmt.Sprintf("key-%d", (id*7+i)%300))
					if i%3 == 0 {
						if err := s.Set(k, []byte(fmt.Sprintf("val-%d-%d", id, i)), 0, 0); err != nil {
							errCh <- err
							return
						}
					} else {
						if _, _, err := s.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
							errCh <- err
							return
						}
					}
				}
			}(p*threadsPer+th, s)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := b.Stats()
	want := uint64(procs * threadsPer * iters)
	if st.Gets+st.Sets != want {
		t.Fatalf("ops recorded %d, want %d", st.Gets+st.Sets, want)
	}
}

func TestErrKilledType(t *testing.T) {
	e := &proc.ErrKilled{PID: 3}
	if e.Error() == "" {
		t.Fatal("empty ErrKilled")
	}
}
