package memcached

import (
	"net/http"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/histogram"
	"plibmc/internal/hodor"
	"plibmc/internal/metrics"
)

// The observability plane's merged snapshot: one call collects the
// scattered operation counters, the scattered latency histograms, hodor's
// trampoline accounting, and the recovery-event counters — everything an
// operator (or the HTTP exporter below) needs to see the store under load.

// RecoveryMetrics summarizes the repair coordinator's history.
type RecoveryMetrics struct {
	Repairs            int // completed quarantine→repair→resume cycles
	LocksBroken        int // cumulative dead-owner locks force-released
	ReadersRetired     int // cumulative dead-owner reader slots expired
	HistogramsRepaired int // cumulative latency histograms mended mid-record
	// LastRepair is the most recent structural repair report (per-pass
	// LocksBroken/ReadersRetired included).
	LastRepair core.RepairReport
	// TimeToResume is the wall-clock span of the most recent cycle, crash
	// observation to library resume; zero if no repair has run.
	TimeToResume time.Duration
	// LastRepairAt is when the most recent cycle completed.
	LastRepairAt time.Time
}

// CheckpointMetrics summarizes the checkpoint coordinator's history.
type CheckpointMetrics struct {
	Checkpoints    int           // images written durably
	Failures       int           // attempts that failed mid-write
	LastError      string        // message of the most recent failure ("" if none)
	LastFailureAt  time.Time     // when the most recent failure happened
	LastGeneration uint64        // generation stamp of the newest image
	LastDuration   time.Duration // wall-clock cost of the newest image
	LastAt         time.Time     // when the newest image landed
}

// Metrics is the merged observability snapshot.
type Metrics struct {
	// Ops is the scattered operation-counter snapshot.
	Ops core.Stats
	// Latency is the merged per-op-class histogram matrix; SampleEvery is
	// its per-context sampling period (1 = every operation).
	Latency     core.LatencySnapshot
	SampleEvery uint64
	// Library is hodor's call accounting; Crossing the per-crossing
	// trampoline latency distribution (empty unless Library profiling on).
	Library    hodor.Metrics
	Crossing   histogram.Snapshot
	Recovery   RecoveryMetrics
	Checkpoint CheckpointMetrics
	// Heap occupancy.
	HeapLiveBytes uint64
	HeapCapacity  uint64
}

// CrossingsPerOp divides completed trampoline crossings by executed store
// operations — the batching figure of merit. Unbatched traffic sits at 1.0;
// pipelined/batched traffic falls as 1/k with mean batch size k. Zero when
// no operations have run.
func (m *Metrics) CrossingsPerOp() float64 {
	ops := m.Ops.Gets + m.Ops.Sets + m.Ops.Deletes + m.Ops.Incrs +
		m.Ops.Decrs + m.Ops.Touches
	if ops == 0 {
		return 0
	}
	return float64(m.Library.Crossings) / float64(ops)
}

// MeanBatchSize is the mean number of operations per executed batch; zero
// when no batches have run.
func (m *Metrics) MeanBatchSize() float64 {
	if m.Ops.Batches == 0 {
		return 0
	}
	return float64(m.Ops.BatchedOps) / float64(m.Ops.Batches)
}

// Metrics collects the merged snapshot.
func (b *Bookkeeper) Metrics() Metrics {
	m := Metrics{
		Ops:           b.store.Stats(),
		Latency:       b.store.Latency(),
		SampleEvery:   b.store.LatencySampleEvery(),
		Library:       b.lib.Metrics(),
		Crossing:      b.lib.CrossingLatency(),
		HeapLiveBytes: b.alloc.LiveBytes(),
		HeapCapacity:  b.alloc.Capacity(),
	}
	b.repairReportMu.Lock()
	m.Recovery = RecoveryMetrics{
		Repairs:            b.repairs,
		LocksBroken:        b.locksBroken,
		ReadersRetired:     b.readersRetired,
		HistogramsRepaired: b.histsRepaired,
		LastRepair:         b.lastRepair,
		TimeToResume:       b.lastRepairTime,
		LastRepairAt:       b.lastRepairAt,
	}
	m.Checkpoint = CheckpointMetrics{
		Checkpoints:    b.ckpts,
		Failures:       b.ckptFailures,
		LastError:      b.ckptLastErr,
		LastFailureAt:  b.ckptLastErrAt,
		LastGeneration: b.ckptLastGen,
		LastDuration:   b.ckptLastTime,
		LastAt:         b.ckptLastAt,
	}
	b.repairReportMu.Unlock()
	return m
}

// latencyQuantiles appends quantile/count/sum samples for one histogram
// under name, with extra labels.
func latencyQuantiles(out []metrics.Sample, name string, h *histogram.Snapshot, labels ...string) []metrics.Sample {
	for _, q := range []struct {
		q string
		p float64
	}{{"0.5", 50}, {"0.99", 99}, {"0.999", 99.9}} {
		out = append(out, metrics.Sample{
			Name:   name,
			Labels: metrics.L(append(append([]string{}, labels...), "quantile", q.q)...),
			Value:  h.Percentile(q.p).Seconds(),
		})
	}
	out = append(out,
		metrics.Sample{Name: name + "_count", Labels: metrics.L(labels...), Value: float64(h.Count())},
		metrics.Sample{Name: name + "_sum", Labels: metrics.L(labels...), Value: (time.Duration(h.Sum)).Seconds()},
	)
	return out
}

// Samples renders the snapshot as Prometheus samples.
func (m *Metrics) Samples() []metrics.Sample {
	var out []metrics.Sample
	g := func(name string, v float64, labels ...string) {
		out = append(out, metrics.Sample{Name: name, Labels: metrics.L(labels...), Value: v})
	}

	// Operation counters (the scattered stats array).
	g("plibmc_ops_total", float64(m.Ops.Gets), "op", "get")
	g("plibmc_ops_total", float64(m.Ops.Sets), "op", "set")
	g("plibmc_ops_total", float64(m.Ops.Deletes), "op", "delete")
	g("plibmc_ops_total", float64(m.Ops.Incrs), "op", "incr")
	g("plibmc_ops_total", float64(m.Ops.Decrs), "op", "decr")
	g("plibmc_ops_total", float64(m.Ops.Touches), "op", "touch")
	g("plibmc_get_hits_total", float64(m.Ops.GetHits))
	g("plibmc_get_misses_total", float64(m.Ops.GetMisses))
	g("plibmc_get_fastpath_total", float64(m.Ops.GetFastpathHits))
	g("plibmc_seqlock_retries_total", float64(m.Ops.SeqlockRetries))
	g("plibmc_evictions_total", float64(m.Ops.Evictions))
	g("plibmc_expired_total", float64(m.Ops.Expired))
	g("plibmc_curr_items", float64(m.Ops.CurrItems))
	g("plibmc_bytes", float64(m.Ops.Bytes))
	g("plibmc_heap_live_bytes", float64(m.HeapLiveBytes))
	g("plibmc_heap_capacity_bytes", float64(m.HeapCapacity))

	// Per-op-class latency, from the heap-resident scattered histograms.
	g("plibmc_op_latency_sample_every", float64(m.SampleEvery))
	for class := 0; class < core.NumLatClasses; class++ {
		h := m.Latency.Classes[class]
		out = latencyQuantiles(out, "plibmc_op_latency_seconds", &h, "op", core.LatClassNames[class])
	}

	// Trampoline accounting and batch amortization.
	g("plibmc_trampoline_calls_total", float64(m.Library.Calls))
	g("plibmc_trampoline_crossings_total", float64(m.Library.Crossings))
	g("plibmc_trampoline_rejected_total", float64(m.Library.Rejected))
	g("plibmc_trampoline_crashes_total", float64(m.Library.Crashes))
	g("plibmc_batches_total", float64(m.Ops.Batches))
	g("plibmc_batched_ops_total", float64(m.Ops.BatchedOps))
	g("plibmc_crossings_per_op", m.CrossingsPerOp())
	g("plibmc_mean_batch_size", m.MeanBatchSize())
	if m.Crossing.Count() > 0 {
		cr := m.Crossing
		out = latencyQuantiles(out, "plibmc_trampoline_crossing_seconds", &cr)
	}

	// Gate-hardening containment counters.
	g("plibmc_attacks_contained_total", float64(m.Library.AttacksContained))
	g("plibmc_tenant_calls_reaped_total", float64(m.Library.TenantCallsReaped))
	g("plibmc_tenant_warns_total", float64(m.Library.TenantWarns))
	g("plibmc_tenant_aborts_total", float64(m.Library.TenantAborts))
	g("plibmc_gate_rejections_total", float64(m.Library.GateRejections))

	// Recovery events.
	g("plibmc_recovery_repairs_total", float64(m.Recovery.Repairs))
	g("plibmc_recovery_locks_broken_total", float64(m.Recovery.LocksBroken))
	g("plibmc_recovery_readers_retired_total", float64(m.Recovery.ReadersRetired))
	g("plibmc_recovery_histograms_repaired_total", float64(m.Recovery.HistogramsRepaired))
	g("plibmc_recovery_items_dropped_total", float64(m.Ops.ItemsDroppedInRepair))
	g("plibmc_recovery_last_resume_seconds", m.Recovery.TimeToResume.Seconds())

	// Corruption containment.
	g("plibmc_corruption_detected_total", float64(m.Ops.CorruptionsDetected))
	g("plibmc_corruption_quarantined_total", float64(m.Ops.ItemsQuarantined))

	// Checkpoint coordinator.
	g("plibmc_checkpoint_total", float64(m.Checkpoint.Checkpoints))
	g("plibmc_checkpoint_failures_total", float64(m.Checkpoint.Failures))
	g("plibmc_checkpoint_last_generation", float64(m.Checkpoint.LastGeneration))
	g("plibmc_checkpoint_last_duration_seconds", m.Checkpoint.LastDuration.Seconds())
	return out
}

// Vars renders the snapshot as a flat expvar-style map.
func (m *Metrics) Vars() map[string]any {
	v := map[string]any{
		"cmd_get":                  m.Ops.Gets,
		"cmd_set":                  m.Ops.Sets,
		"cmd_delete":               m.Ops.Deletes,
		"cmd_touch":                m.Ops.Touches,
		"get_hits":                 m.Ops.GetHits,
		"get_misses":               m.Ops.GetMisses,
		"curr_items":               m.Ops.CurrItems,
		"bytes":                    m.Ops.Bytes,
		"evictions":                m.Ops.Evictions,
		"expired":                  m.Ops.Expired,
		"heap_live_bytes":          m.HeapLiveBytes,
		"heap_capacity_bytes":      m.HeapCapacity,
		"latency_sample_every":     m.SampleEvery,
		"trampoline_calls":         m.Library.Calls,
		"trampoline_crossings":     m.Library.Crossings,
		"batches":                  m.Ops.Batches,
		"batched_ops":              m.Ops.BatchedOps,
		"crossings_per_op":         m.CrossingsPerOp(),
		"mean_batch_size":          m.MeanBatchSize(),
		"attacks_contained":        m.Library.AttacksContained,
		"tenant_calls_reaped":      m.Library.TenantCallsReaped,
		"tenant_warns":             m.Library.TenantWarns,
		"tenant_aborts":            m.Library.TenantAborts,
		"gate_rejections":          m.Library.GateRejections,
		"recovery_repairs":         uint64(m.Recovery.Repairs),
		"recovery_locks_broken":    uint64(m.Recovery.LocksBroken),
		"recovery_readers_retired": uint64(m.Recovery.ReadersRetired),
		"recovery_last_resume_ns":  int64(m.Recovery.TimeToResume),
		"corruption_detected":      m.Ops.CorruptionsDetected,
		"corruption_quarantined":   m.Ops.ItemsQuarantined,
		"checkpoints":              uint64(m.Checkpoint.Checkpoints),
		"checkpoint_failures":      uint64(m.Checkpoint.Failures),
		"checkpoint_last_error":    m.Checkpoint.LastError,
		"checkpoint_last_gen":      m.Checkpoint.LastGeneration,
	}
	for class := 0; class < core.NumLatClasses; class++ {
		h := m.Latency.Classes[class]
		name := core.LatClassNames[class]
		v["latency_"+name+"_count"] = h.Count()
		v["latency_"+name+"_p50_ns"] = int64(h.Percentile(50))
		v["latency_"+name+"_p99_ns"] = int64(h.Percentile(99))
	}
	return v
}

// MetricsHandler serves /metrics (Prometheus text exposition) and
// /debug/vars (expvar-shaped JSON) for this store.
func (b *Bookkeeper) MetricsHandler() http.Handler {
	return metrics.Handler(func() ([]metrics.Sample, map[string]any) {
		m := b.Metrics()
		return m.Samples(), m.Vars()
	})
}
