package memcached

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"plibmc/internal/client"
)

func newTestCluster(t testing.TB, shards int, cfg ClusterConfig) *Cluster {
	t.Helper()
	cfg.Shards = shards
	if cfg.Store.HeapBytes == 0 {
		cfg.Store = Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64}
	}
	c, err := CreateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Shutdown() })
	return c
}

func newClusterSession(t testing.TB, c *Cluster) *ClusterSession {
	t.Helper()
	cc, err := c.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestClusterBasicOps(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	s := newClusterSession(t, c)

	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("ck-%d", i))
		if err := s.Set(k, []byte(fmt.Sprintf("v-%d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("ck-%d", i))
		v, f, err := s.Get(k)
		if err != nil || string(v) != fmt.Sprintf("v-%d", i) || f != uint32(i) {
			t.Fatalf("get %s = %q %d %v", k, v, f, err)
		}
	}
	// Keys actually spread: every shard holds some.
	for sh := 0; sh < c.Shards(); sh++ {
		if items := c.Shard(sh).Stats().CurrItems; items == 0 {
			t.Fatalf("shard %d holds no items", sh)
		}
	}
	if agg := c.Stats(); agg.CurrItems != n {
		t.Fatalf("aggregate curr_items = %d, want %d", agg.CurrItems, n)
	}

	// The full per-key surface routes consistently.
	if _, _, err := s.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	if err := s.Add([]byte("ck-0"), []byte("x"), 0, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("add = %v", err)
	}
	if err := s.Replace([]byte("ck-0"), []byte("r"), 0, 0); err != nil {
		t.Fatal(err)
	}
	_, _, cas, err := s.Gets([]byte("ck-0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CAS([]byte("ck-0"), []byte("c"), 0, 0, cas); err != nil {
		t.Fatal(err)
	}
	if err := s.CAS([]byte("ck-0"), []byte("c2"), 0, 0, cas); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale cas = %v", err)
	}
	if err := s.Append([]byte("ck-0"), []byte("+t")); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepend([]byte("ck-0"), []byte("h+")); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Get([]byte("ck-0")); err != nil || string(v) != "h+c+t" {
		t.Fatalf("after append/prepend = %q %v", v, err)
	}
	s.Set([]byte("num"), []byte("40"), 0, 0)
	if v, err := s.Increment([]byte("num"), 2); err != nil || v != 42 {
		t.Fatalf("incr = %d %v", v, err)
	}
	if v, err := s.Decrement([]byte("num"), 2); err != nil || v != 40 {
		t.Fatalf("decr = %d %v", v, err)
	}
	if err := s.Touch([]byte("num"), 1000); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.GetAndTouch([]byte("num"), 2000); err != nil || string(v) != "40" {
		t.Fatalf("gat = %q %v", v, err)
	}
	if err := s.Delete([]byte("num")); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if agg := c.Stats(); agg.CurrItems != 0 {
		t.Fatalf("after flush curr_items = %d", agg.CurrItems)
	}
}

// Placement must agree between the session router and the ring, and stay
// deterministic across handles.
func TestClusterRoutingDeterministic(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	s := newClusterSession(t, c)
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("route-%d", i))
		if err := s.Set(k, []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		owner := c.ShardFor(k)
		// The owning shard serves the key directly…
		if v, _, err := s.Session(owner).Get(k); err != nil || string(v) != "v" {
			t.Fatalf("owner shard %d: get %s = %q %v", owner, k, v, err)
		}
		// …and no other shard has it.
		for sh := 0; sh < c.Shards(); sh++ {
			if sh == owner {
				continue
			}
			if _, _, err := s.Session(sh).Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %s leaked to shard %d: %v", k, sh, err)
			}
		}
	}
}

// A 64-key MGet splits into per-shard sub-batches and reassembles in
// request order, with exactly one batch crossing per involved shard.
func TestClusterMGetSplitsAndReassembles(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	s := newClusterSession(t, c)

	var keys [][]byte
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("mget-%02d", i))
		keys = append(keys, k)
		if i%2 == 0 {
			if err := s.Set(k, []byte(fmt.Sprintf("val-%02d", i)), uint32(i), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := make([]uint64, c.Shards())
	for sh := range before {
		before[sh] = c.Shard(sh).Stats().Batches
	}
	res, err := s.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 64 {
		t.Fatalf("mget returned %d results, want 64", len(res))
	}
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			if !res[i].Found || string(res[i].Value) != fmt.Sprintf("val-%02d", i) || res[i].Flags != uint32(i) {
				t.Fatalf("res[%d] = %+v — out of request order", i, res[i])
			}
		} else if res[i].Found {
			t.Fatalf("res[%d] found for never-set key", i)
		}
	}
	// One crossing per involved shard: each shard's batch counter rose by
	// exactly one (every shard owns some of 64 keys at 4 shards).
	for sh := 0; sh < c.Shards(); sh++ {
		if got := c.Shard(sh).Stats().Batches - before[sh]; got != 1 {
			t.Fatalf("shard %d executed %d batches for one MGet, want 1", sh, got)
		}
	}
}

// A batch whose ops span shards must keep positional alignment even when
// one shard's crossing fails outright: the dead shard's slots carry
// per-op errors, every other slot holds its own shard's result at the
// position the caller asked for, and MGet reports the dead shard's keys
// as plain misses. Before the per-shard error isolation, a failed
// crossing aborted the whole batch — or worse, collapsed the failed
// shard's slots and shifted every later result left.
func TestClusterExecBatchShardFailureAlignment(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	cc, err := c.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Seed keys and bucket them by owning shard.
	byShard := make(map[int][]string)
	covered := func() bool {
		for sh := 0; sh < 4; sh++ {
			if len(byShard[sh]) < 4 {
				return false
			}
		}
		return true
	}
	for i := 0; !covered(); i++ {
		k := fmt.Sprintf("align-%03d", i)
		if err := s.Set([]byte(k), []byte("val-"+k), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
		sh := c.ShardFor([]byte(k))
		byShard[sh] = append(byShard[sh], k)
		if i > 4096 {
			t.Fatal("keys never spread over all 4 shards")
		}
	}
	const dead = 2
	// Interleave victim-shard and survivor-shard keys so any collapsing
	// of the failed shard's slots would visibly shift later results.
	var keys []string
	for i := 0; i < 4; i++ {
		keys = append(keys, byShard[dead][i])
		keys = append(keys, byShard[(dead+1)%4][i], byShard[(dead+3)%4][i])
	}
	cc.Proc(dead).Kill()

	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Code: BatchGet, Key: []byte(k)}
	}
	res, err := s.ExecBatch(ops)
	if err != nil {
		t.Fatalf("ExecBatch must isolate a shard failure, got call error %v", err)
	}
	if len(res) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(res), len(ops))
	}
	for i, k := range keys {
		if c.ShardFor([]byte(k)) == dead {
			if res[i].Err == nil {
				t.Fatalf("res[%d] (%s, dead shard) succeeded: %+v", i, k, res[i])
			}
			if !strings.Contains(res[i].Err.Error(), fmt.Sprintf("shard %d", dead)) {
				t.Fatalf("res[%d] error does not name the failed shard: %v", i, res[i].Err)
			}
			continue
		}
		if res[i].Err != nil || string(res[i].Value) != "val-"+k {
			t.Fatalf("res[%d] (%s, live shard) = %q err=%v — misaligned", i, k, res[i].Value, res[i].Err)
		}
	}

	// MGet over the same interleaving: dead shard's keys degrade to
	// misses, live keys stay found at their requested positions.
	bkeys := make([][]byte, len(keys))
	for i, k := range keys {
		bkeys[i] = []byte(k)
	}
	mres, err := s.MGet(bkeys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if c.ShardFor([]byte(k)) == dead {
			if mres[i].Found {
				t.Fatalf("mres[%d] (%s, dead shard) found", i, k)
			}
			continue
		}
		if !mres[i].Found || string(mres[i].Value) != "val-"+k {
			t.Fatalf("mres[%d] (%s, live shard) = %+v — misaligned", i, k, mres[i])
		}
	}
}

func TestClusterExecBatchMixed(t *testing.T) {
	c := newTestCluster(t, 3, ClusterConfig{})
	s := newClusterSession(t, c)
	ops := []BatchOp{
		{Code: BatchSet, Key: []byte("b1"), Value: []byte("v1"), Flags: 7},
		{Code: BatchSet, Key: []byte("b2"), Value: []byte("10")},
		{Code: BatchGet, Key: []byte("b1")},
		{Code: BatchIncr, Key: []byte("b2"), Delta: 5},
		{Code: BatchGet, Key: []byte("nope")},
		{Code: BatchDelete, Key: []byte("b1")},
	}
	res, err := s.ExecBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("sets failed: %v %v", res[0].Err, res[1].Err)
	}
	if res[2].Err != nil || string(res[2].Value) != "v1" || res[2].Flags != 7 {
		t.Fatalf("batched get = %+v", res[2])
	}
	if res[3].Err != nil || res[3].Num != 15 {
		t.Fatalf("batched incr = %+v", res[3])
	}
	if !errors.Is(res[4].Err, ErrNotFound) {
		t.Fatalf("batched miss = %v", res[4].Err)
	}
	if res[5].Err != nil {
		t.Fatalf("batched delete = %v", res[5].Err)
	}
}

// Hot-key detection promotes a heavily-read key, replicates it to the
// sibling shard, and writes invalidate the replica.
func TestClusterHotKeyReplication(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{HotKeyThreshold: 50})
	s := newClusterSession(t, c)

	hot := []byte("celebrity")
	if err := s.Set(hot, []byte("v1"), 9, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if v, f, err := s.Get(hot); err != nil || string(v) != "v1" || f != 9 {
			t.Fatalf("hot get #%d = %q %d %v", i, v, f, err)
		}
	}
	m := c.Metrics()
	if m.HotKey.Detected == 0 {
		t.Fatal("hot key never detected")
	}
	if m.HotKey.Replications == 0 {
		t.Fatal("hot key never replicated")
	}
	if m.HotKey.ReplicaHits == 0 {
		t.Fatal("replica never served a read")
	}
	// The replica shard physically holds a copy.
	primary := c.ShardFor(hot)
	replica := c.replicaOf(primary)
	if v, _, err := s.Session(replica).Get(hot); err != nil || string(v) != "v1" {
		t.Fatalf("replica copy = %q %v", v, err)
	}
	// A write invalidates the replica and readers see the new value.
	if err := s.Set(hot, []byte("v2"), 9, 0); err != nil {
		t.Fatal(err)
	}
	if c.Metrics().HotKey.Invalidations == 0 {
		t.Fatal("write did not invalidate the replica")
	}
	for i := 0; i < 50; i++ {
		if v, _, err := s.Get(hot); err != nil || string(v) != "v2" {
			t.Fatalf("post-write hot get = %q %v", v, err)
		}
	}
	// Gets (CAS reads) bypass the replica: its CAS must validate against
	// the primary.
	_, _, cas, err := s.Gets(hot)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CAS(hot, []byte("v3"), 9, 0, cas); err != nil {
		t.Fatalf("cas after hot reads: %v", err)
	}
}

// Shards persist and reload independently: Create → populate → Shutdown →
// Open finds every key again from the per-shard images.
func TestClusterPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := ClusterConfig{Shards: 3, Dir: dir,
		Store: Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64}}
	c, err := CreateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := c.NewClientProcess(1000)
	s, _ := cc.NewSession()
	for i := 0; i < 100; i++ {
		if err := s.Set([]byte(fmt.Sprintf("p-%d", i)), []byte(fmt.Sprintf("pv-%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Shutdown()
	s2 := newClusterSession(t, c2)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("p-%d", i))
		if v, _, err := s2.Get(k); err != nil || string(v) != fmt.Sprintf("pv-%d", i) {
			t.Fatalf("reloaded get %s = %q %v", k, v, err)
		}
	}
}

func TestClusterMetricsSamples(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{})
	s := newClusterSession(t, c)
	s.Set([]byte("m"), []byte("v"), 0, 0)
	s.Get([]byte("m"))
	cm := c.Metrics()
	samples := cm.Samples()
	want := map[string]bool{
		"plibmc_shard_ops_total":            false,
		"plibmc_shard_state":                false,
		"plibmc_hotkey_detected_total":      false,
		"plibmc_hotkey_replica_hits_total":  false,
		"plibmc_hotkey_invalidations_total": false,
	}
	shardLabels := map[string]bool{}
	for _, smp := range samples {
		if _, ok := want[smp.Name]; ok {
			want[smp.Name] = true
		}
		if smp.Name == "plibmc_shard_state" {
			shardLabels[fmt.Sprint(smp.Labels)] = true
			if smp.Value != float64(ShardHealthy) {
				t.Fatalf("healthy shard reports state %v", smp.Value)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s missing from samples", name)
		}
	}
	if len(shardLabels) != 2 {
		t.Fatalf("shard_state label sets = %v, want one per shard", shardLabels)
	}
	if v := cm.Vars(); v["shards"] != 2 {
		t.Fatalf("vars shards = %v", v["shards"])
	}
}

// The socket proxy serves baseline-protocol clients transparently over
// the cluster: both protocols, batching, stats aggregation.
func TestClusterProxyWire(t *testing.T) {
	c := newTestCluster(t, 4, ClusterConfig{})
	srv, err := c.ServeRemote("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, proto := range []client.Protocol{client.ASCII, client.Binary} {
		name := map[client.Protocol]string{client.Binary: "binary", client.ASCII: "ascii"}[proto]
		t.Run(name, func(t *testing.T) {
			cl, err := client.Dial("tcp", srv.Addr().String(), proto)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i := 0; i < 60; i++ {
				k := []byte(fmt.Sprintf("%s-wire-%d", name, i))
				if err := cl.Set(k, []byte(fmt.Sprintf("wv-%d", i)), 3, 0); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 60; i++ {
				k := []byte(fmt.Sprintf("%s-wire-%d", name, i))
				v, f, _, err := cl.Get(k)
				if err != nil || string(v) != fmt.Sprintf("wv-%d", i) || f != 3 {
					t.Fatalf("get %s = %q %d %v", k, v, f, err)
				}
			}
			// Pipelined MGet crosses shards and reassembles in order.
			var keys [][]byte
			for i := 0; i < 60; i++ {
				keys = append(keys, []byte(fmt.Sprintf("%s-wire-%d", name, i)))
			}
			got, err := cl.MGet(keys)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 60 {
				t.Fatalf("mget = %d values, want 60", len(got))
			}
			if n, err := cl.Increment([]byte(name+"-n"), 1); err == nil && n != 0 {
				t.Fatalf("incr on absent key = %d", n)
			}
			if err := cl.Delete(keys[0]); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := cl.Get(keys[0]); err == nil {
				t.Fatal("deleted key still present")
			}
			ver, err := cl.Version()
			if err != nil || !strings.Contains(ver, "cluster") {
				t.Fatalf("version = %q %v", ver, err)
			}
			stats, err := cl.Stats()
			if err != nil || stats["shards"] != "4" {
				t.Fatalf("stats shards = %q %v", stats["shards"], err)
			}
			if stats["shard0:state"] != "0" {
				t.Fatalf("shard0 state = %q", stats["shard0:state"])
			}
		})
	}

	// Keys written over the wire spread across shards.
	spread := 0
	for sh := 0; sh < c.Shards(); sh++ {
		if c.Shard(sh).Stats().CurrItems > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("wire traffic landed on %d shards", spread)
	}
}

// BenchmarkClusterRouting pins the routing tier's per-op overhead: the
// same single-session 95/5 Get/Set mix against one store driven directly
// and against a 4-shard cluster (ring lookup + per-shard dispatch + the
// write-path hot-key check). The delta is the price of sharding when the
// parallelism it buys is not in play.
func BenchmarkClusterRouting(b *testing.B) {
	const nKeys = 4096
	keys := make([][]byte, nKeys)
	val := make([]byte, 128)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench%04d", i))
	}
	mix := func(b *testing.B, get func([]byte) error, set func([]byte) error) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%nKeys]
			if i%20 == 19 {
				if err := set(k); err != nil {
					b.Fatal(err)
				}
			} else if err := get(k); err != nil && !errors.Is(err, ErrNotFound) {
				b.Fatal(err)
			}
		}
	}

	b.Run("direct", func(b *testing.B) {
		book, err := CreateStore(Config{HeapBytes: 64 << 20, HashPower: 12, NumItemLocks: 64})
		if err != nil {
			b.Fatal(err)
		}
		defer book.Shutdown()
		cp, err := book.NewClientProcess(1000)
		if err != nil {
			b.Fatal(err)
		}
		s, err := cp.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range keys {
			if err := s.Set(k, val, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		mix(b,
			func(k []byte) error { _, _, err := s.Get(k); return err },
			func(k []byte) error { return s.Set(k, val, 0, 0) })
	})
	b.Run("cluster-4", func(b *testing.B) {
		c := newTestCluster(b, 4, ClusterConfig{
			Store: Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64},
		})
		s := newClusterSession(b, c)
		for _, k := range keys {
			if err := s.Set(k, val, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		mix(b,
			func(k []byte) error { _, _, err := s.Get(k); return err },
			func(k []byte) error { return s.Set(k, val, 0, 0) })
	})
}

// BenchmarkClusterMGet64 measures the sharded 64-key MGet: the batch
// splits across 4 shards (one crossing each) and reassembles positionally.
func BenchmarkClusterMGet64(b *testing.B) {
	c := newTestCluster(b, 4, ClusterConfig{
		Store: Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64},
	})
	s := newClusterSession(b, c)
	val := make([]byte, 128)
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("mget%04d", i))
		if err := s.Set(keys[i], val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.MGet(keys)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 64 {
			b.Fatal("short result")
		}
	}
}
