package memcached

import (
	"fmt"
	"time"

	"plibmc/internal/shm"
)

// Live checkpoints.
//
// The paper persists the store only at orderly shutdown and leaves crash
// resilience as future work (§6). This implementation goes two steps
// further. Checkpoint quiesces the store through the operation gate (all
// in-flight calls drain; none holds a lock or a half-built structure) and
// writes a generation-stamped, checksummed heap image crash-atomically
// (temp file + rename). Successive checkpoints alternate between two slots
// (<path>.a / <path>.b), so the previous image survives a crash at any
// instant of the current write — OpenStore falls back to the newest image
// that verifies. A process that dies mid-checkpoint therefore loses only
// the writes since the previous checkpoint, never the store's integrity.

// ErrRecovering is returned by Checkpoint when the store is being
// structurally repaired: a heap image taken mid-repair would persist
// half-rebuilt chains, so the checkpoint refuses rather than waits out an
// unbounded repair.
var ErrRecovering = fmt.Errorf("memcached: store is being repaired; retry after recovery")

// Checkpoint writes a consistent heap image next to the configured backing
// file while the store stays online. The store is paused only for the
// duration of the file write.
func (b *Bookkeeper) Checkpoint() error {
	if b.cfg.Path == "" {
		return fmt.Errorf("memcached: checkpoint requires a backing file path")
	}
	// Cheap early refusal before touching repairMu: if a repair is already
	// running, the mutex is held (or about to be contended) by the repair
	// coordinator and there is nothing useful to wait for.
	if b.lib.Recovering() {
		return ErrRecovering
	}
	// Checkpointing and structural repair are mutually exclusive: a heap
	// image taken mid-repair would persist half-rebuilt chains.
	b.repairMu.Lock()
	defer b.repairMu.Unlock()
	// Re-check after acquiring: a crash may have flipped the library into
	// recovery while we waited for a maintenance pass to finish. The repair
	// coordinator spins on TryLock, so returning promptly here is what lets
	// it in.
	if b.lib.Recovering() {
		return ErrRecovering
	}
	// Quiesce, but abandon the attempt the moment a crash starts a repair:
	// the gate may never drain under a dead call, and the repair pass both
	// needs repairMu and resets the gate itself.
	if !b.store.QuiesceWithAbort(b.lib.Recovering) {
		return ErrRecovering
	}
	defer b.store.Unquiesce()

	gen := b.ckptGen + 1
	start := time.Now()
	err := b.heap.WriteImage(shm.CheckpointSlot(b.cfg.Path, gen), gen)
	b.repairReportMu.Lock()
	if err != nil {
		b.ckptFailures++
		b.ckptLastErr = err.Error()
		b.ckptLastErrAt = time.Now()
	} else {
		b.ckpts++
		b.ckptLastGen = gen
		b.ckptLastTime = time.Since(start)
		b.ckptLastAt = time.Now()
	}
	b.repairReportMu.Unlock()
	if err != nil {
		return err
	}
	b.ckptGen = gen
	return nil
}

// CheckpointGeneration returns the generation of the most recent durable
// image (written by this Bookkeeper or inherited from the image OpenStore
// loaded). Zero means no image exists yet.
func (b *Bookkeeper) CheckpointGeneration() uint64 {
	b.repairMu.Lock()
	defer b.repairMu.Unlock()
	return b.ckptGen
}

// StartCheckpointing writes a checkpoint every interval until
// StopCheckpointing. Errors are reported through the returned channel
// (buffered; unread errors are dropped). ErrRecovering is expected when a
// tick lands during a repair and is not reported.
func (b *Bookkeeper) StartCheckpointing(interval time.Duration) <-chan error {
	errs := make(chan error, 4)
	if b.stopCkpt != nil {
		return errs
	}
	b.stopCkpt = make(chan struct{})
	b.ckptDone = make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		defer close(b.ckptDone)
		for {
			select {
			case <-t.C:
				if err := b.Checkpoint(); err != nil && err != ErrRecovering {
					select {
					case errs <- err:
					default:
					}
				}
			case <-b.stopCkpt:
				return
			}
		}
	}()
	return errs
}

// StopCheckpointing stops the periodic checkpointer.
func (b *Bookkeeper) StopCheckpointing() {
	if b.stopCkpt == nil {
		return
	}
	close(b.stopCkpt)
	<-b.ckptDone
	b.stopCkpt, b.ckptDone = nil, nil
}
