package memcached

import (
	"fmt"
	"time"
)

// Live checkpoints.
//
// The paper persists the store only at orderly shutdown and leaves crash
// resilience as future work (§6). This implementation goes one step
// further: Checkpoint quiesces the store through the operation gate (all
// in-flight calls drain; none holds a lock or a half-built structure),
// writes the heap image crash-atomically (temp file + rename), and
// resumes. A process that dies after a checkpoint loses only the writes
// since that checkpoint, never the store's integrity.

// Checkpoint writes a consistent heap image to the configured backing
// file while the store stays online. The store is paused only for the
// duration of the file write.
func (b *Bookkeeper) Checkpoint() error {
	if b.cfg.Path == "" {
		return fmt.Errorf("memcached: checkpoint requires a backing file path")
	}
	// Checkpointing and structural repair are mutually exclusive: a heap
	// image taken mid-repair would persist half-rebuilt chains.
	b.repairMu.Lock()
	defer b.repairMu.Unlock()
	if b.lib.Recovering() {
		return fmt.Errorf("memcached: store is being repaired; retry after recovery")
	}
	b.store.Quiesce()
	defer b.store.Unquiesce()
	return b.heap.Flush(b.cfg.Path)
}

// StartCheckpointing writes a checkpoint every interval until
// StopCheckpointing. Errors are reported through the returned channel
// (buffered; unread errors are dropped).
func (b *Bookkeeper) StartCheckpointing(interval time.Duration) <-chan error {
	errs := make(chan error, 4)
	if b.stopCkpt != nil {
		return errs
	}
	b.stopCkpt = make(chan struct{})
	b.ckptDone = make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		defer close(b.ckptDone)
		for {
			select {
			case <-t.C:
				if err := b.Checkpoint(); err != nil {
					select {
					case errs <- err:
					default:
					}
				}
			case <-b.stopCkpt:
				return
			}
		}
	}()
	return errs
}

// StopCheckpointing stops the periodic checkpointer.
func (b *Bookkeeper) StopCheckpointing() {
	if b.stopCkpt == nil {
		return
	}
	close(b.stopCkpt)
	<-b.ckptDone
	b.stopCkpt, b.ckptDone = nil, nil
}
