package memcached

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/metrics"
	"plibmc/internal/ring"
)

// A Cluster fans one keyspace across N independent protected-library
// stores. Each shard is a full Bookkeeper — its own shared heap, backing
// file, A/B checkpoint slots, repair coordinator, and watchdog — so a
// crash, scrub, or repair pass on one shard never stalls the others: the
// isolation boundary of the paper's single store becomes the isolation
// boundary of each shard. Keys are placed by a deterministic consistent-
// hash ring (internal/ring) that the in-process fast lane, the socket
// proxy (proxy.go), and offline tooling (plibdump over a shard directory)
// all share.
//
// The ring, shard set, and hot-key trackers live together in one
// immutable topology snapshot behind an atomic pointer: a live resize
// (migrate.go) installs a wider shard set up front, streams the moved
// hash segments between shards in the background, and swaps in the new
// ring only when every segment has cut over. Routing is therefore always
// one atomic load plus, during a migration, the dual-ring decision in
// routeHash.

// ShardImageName returns the backing-file name of shard i inside a
// cluster directory — the naming contract between the cluster and
// plibdump's directory mode.
func ShardImageName(i int) string { return fmt.Sprintf("shard-%03d.img", i) }

// ClusterConfig configures a sharded store.
type ClusterConfig struct {
	// Shards is the store count. Required, ≥ 1.
	Shards int
	// VirtualNodes per shard on the ring (0 = ring.DefaultVirtualNodes).
	VirtualNodes int
	// Dir, when set, holds one backing file per shard (shard-000.img …);
	// each shard gets its own A/B checkpoint slots beside its image, plus
	// a ring.json manifest recording the authoritative ring geometry and,
	// during a live resize, a reshard.json marker.
	// Empty means every shard is in-memory only.
	Dir string
	// Store is the per-shard configuration template. Path is overridden
	// per shard (from Dir); every other field applies to each shard.
	Store Config

	// HotKeyThreshold is the windowed read count at which a key is
	// declared hot and its reads start replicating to the next shard on
	// the ring. 0 disables hot-key handling entirely.
	HotKeyThreshold uint64
	// HotKeyWindow is the decay period of the hot-key counters, in
	// observed reads per shard (0 = 65536).
	HotKeyWindow uint64

	// Clock, when set, overrides every shard's wall clock — including
	// shards created later by Resize. Tests that freeze time use this so
	// a live resize doesn't mint shards with real clocks.
	Clock func() int64

	// BreakerThreshold is the run of consecutive crossing-level failures
	// (recovery timeouts, crashed crossings) that trips a shard's
	// circuit breaker; poison trips it immediately regardless.
	// 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker stays open before the
	// supervisor lets a half-open probe through, measured on the
	// supervisor's clock. 0 means 1s.
	BreakerCooldown time.Duration
}

// topology is one immutable snapshot of the cluster's shape: the
// authoritative ring plus the attachable shard set (which may be wider
// than the ring mid-migration, and after a shrink keeps the drained
// shards attachable until Shutdown). Swapped wholesale under routeMu.
type topology struct {
	ring   *ring.Ring
	shards []*Bookkeeper
	hot    []*hotTracker
}

// Cluster is the multi-store handle.
type Cluster struct {
	cfg  ClusterConfig
	topo atomic.Pointer[topology]

	// mig is the live migration, nil in steady state. Installed under
	// routeMu's write lock so no operation can straddle the moment the
	// dual-ring routing rules take effect; cleared lock-free when the
	// last segment is done (at that point both routing modes agree).
	mig     atomic.Pointer[migration]
	lastMig atomic.Pointer[migration] // survives completion, for status/wait
	routeMu sync.RWMutex
	// resizeMu serializes Resize setup (one resize at a time).
	resizeMu sync.Mutex

	// Hot-key traffic accounting (cluster-wide).
	replicaHits   atomic.Uint64 // hot reads served by the sibling shard
	replicaMisses atomic.Uint64 // hot reads that fell through to the primary
	replications  atomic.Uint64 // values copied to a sibling after a fall-through
	invalidations atomic.Uint64 // replica deletes issued by the write path

	// Migration accounting (cumulative across resizes).
	resizes    atomic.Uint64 // Resize calls that started a migration
	segsMoved  atomic.Uint64 // segments cut over
	keysMoved  atomic.Uint64 // entries installed on their destination
	migRetries atomic.Uint64 // migrator attempts restarted after a crash

	// Lifecycle plane (supervisor.go): per-shard breaker + rebuild
	// records, grown lazily, kept outside topology so they survive
	// rebuilds and resizes.
	health   atomic.Pointer[[]*shardHealth]
	healthMu sync.Mutex

	// Background-loop cadences, recorded so a rebuilt shard resumes its
	// maintenance and checkpoint loops at the cluster's rate.
	maintEvery atomic.Int64 // nanoseconds; 0 = not running
	ckptEvery  atomic.Int64

	// Supervisor loop handle.
	supMu   sync.Mutex
	supStop chan struct{}
	supDone chan struct{}
	// supSeen flips true the first time a supervisor attends this cluster
	// (StartSupervisor or a direct SuperviseOnce pass); until then the
	// breaker refusal path runs the clock transitions inline, so an
	// embedder that never starts the supervisor still gets half-open
	// probes instead of a permanent fast-fail.
	supSeen atomic.Bool
}

func (c *Cluster) top() *topology { return c.topo.Load() }

func (cfg *ClusterConfig) buildRing() (*ring.Ring, error) {
	return ring.New(cfg.Shards, cfg.VirtualNodes)
}

func (cfg *ClusterConfig) shardConfig(i int) Config {
	sc := cfg.Store
	if cfg.Dir != "" {
		sc.Path = filepath.Join(cfg.Dir, ShardImageName(i))
	} else {
		sc.Path = ""
	}
	return sc
}

// setupShard applies the cluster-level invariants to a freshly created or
// reopened shard: the disjoint CAS space and the (optional) test clock.
func (cfg *ClusterConfig) setupShard(b *Bookkeeper, i int) {
	b.Store().SeedCAS(shardCASBase(i)) // no-op past the base; see SeedCAS
	if cfg.Clock != nil {
		b.Store().SetClock(cfg.Clock)
	}
}

func (cfg *ClusterConfig) newTrackers(n int) []*hotTracker {
	hot := make([]*hotTracker, n)
	for i := range hot {
		hot[i] = newHotTracker(cfg.HotKeyThreshold, cfg.HotKeyWindow)
	}
	return hot
}

// CreateCluster formats N fresh shards.
func CreateCluster(cfg ClusterConfig) (*Cluster, error) {
	r, err := cfg.buildRing()
	if err != nil {
		return nil, err
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("memcached: cluster dir: %w", err)
		}
	}
	var shards []*Bookkeeper
	for i := 0; i < cfg.Shards; i++ {
		b, err := CreateStore(cfg.shardConfig(i))
		if err != nil {
			for _, prev := range shards {
				prev.Shutdown() //nolint:errcheck
			}
			return nil, fmt.Errorf("memcached: shard %d: %w", i, err)
		}
		cfg.setupShard(b, i)
		shards = append(shards, b)
	}
	c := &Cluster{cfg: cfg}
	c.topo.Store(&topology{ring: r, shards: shards, hot: cfg.newTrackers(cfg.Shards)})
	if cfg.Dir != "" {
		if err := writeRingManifest(cfg.Dir, r.Shards(), r.VirtualNodes()); err != nil {
			c.Shutdown() //nolint:errcheck
			return nil, err
		}
	}
	return c, nil
}

// shardCASBase puts each shard's CAS generations in a disjoint space
// (shard index in the top 16 bits of a 64-bit counter), so a CAS token
// identifies one write cluster-wide — which is also what lets the
// segment migrator move an entry between shards with its generation
// preserved: the token a client took before the move still validates on
// the destination after it.
func shardCASBase(i int) uint64 { return uint64(i) << 48 }

// OpenCluster reloads every shard from its backing file under cfg.Dir.
// Each shard goes through the candidate-fallback load (base image plus
// A/B checkpoint slots, newest verifying generation first) independently.
// The ring.json manifest, when present, overrides cfg's ring geometry —
// a cluster resized while running reopens at its grown size regardless of
// what the caller remembers. A leftover reshard.json marker (crash mid-
// migration or mid-purge) triggers a placement sweep that deletes every
// entry the manifest ring does not place on the shard holding it.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("memcached: OpenCluster requires a directory")
	}
	if man, err := readRingManifest(cfg.Dir); err != nil {
		return nil, err
	} else if man != nil {
		cfg.Shards = man.Shards
		cfg.VirtualNodes = man.VirtualNodes
	}
	r, err := cfg.buildRing()
	if err != nil {
		return nil, err
	}
	// A shard whose images are all corrupt or missing no longer fails
	// the whole open: it degrades to an empty rebuild (flagged in stats)
	// so the surviving shards' data comes back online. Only when *every*
	// shard fails to open is the error surfaced — that shape means the
	// directory itself is wrong, not one damaged failure domain.
	var shards []*Bookkeeper
	var degraded []int
	var openErrs []string
	for i := 0; i < cfg.Shards; i++ {
		b, err := OpenStore(cfg.shardConfig(i))
		if err != nil {
			openErrs = append(openErrs, fmt.Sprintf("shard %d: %v", i, err))
			b, err = createShardPastCandidates(cfg.shardConfig(i))
			if err != nil {
				for _, prev := range shards {
					prev.Shutdown() //nolint:errcheck
				}
				return nil, fmt.Errorf("memcached: shard %d: %w", i, err)
			}
			degraded = append(degraded, i)
		}
		cfg.setupShard(b, i)
		shards = append(shards, b)
	}
	if len(degraded) == cfg.Shards {
		for _, prev := range shards {
			prev.Shutdown() //nolint:errcheck
		}
		return nil, fmt.Errorf("memcached: no shard opened from %s: %s",
			cfg.Dir, strings.Join(openErrs, "; "))
	}
	c := &Cluster{cfg: cfg}
	c.topo.Store(&topology{ring: r, shards: shards, hot: cfg.newTrackers(cfg.Shards)})
	for _, i := range degraded {
		h := c.shardHealth(i)
		h.rebuiltAtOpen.Store(true)
		h.rebuiltEmpty.Add(1)
	}
	if hasReshardMarker(cfg.Dir) {
		// An interrupted migration parked here. The sources never lose
		// data before the manifest advances, so the manifest ring is
		// always authoritative; sweeping strays (partial copies, orphaned
		// hot-key replicas) restores the clean single-ring invariant.
		c.purgeStale()
		removeReshardMarker(cfg.Dir)
	}
	return c, nil
}

// Shards returns the attachable shard count. During a grow migration this
// already includes the new shards; after a shrink the drained shards stay
// attachable (and counted) until Shutdown, while Ring().Shards() reflects
// the routing width.
func (c *Cluster) Shards() int { return len(c.top().shards) }

// Shard exposes one shard's Bookkeeper (fault injection, per-shard
// maintenance, direct inspection).
func (c *Cluster) Shard(i int) *Bookkeeper { return c.top().shards[i] }

// Ring exposes the authoritative placement ring.
func (c *Cluster) Ring() *ring.Ring { return c.top().ring }

// ShardFor returns the shard owning key on the authoritative ring. During
// a live migration the instantaneous owner may differ per segment; use a
// session's operations (which route with the migration rules) for access.
func (c *Cluster) ShardFor(key []byte) int { return c.top().ring.Shard(key) }

// StartMaintenance starts every shard's maintenance loop. The cadence is
// recorded so a shard rebuilt by the supervisor resumes it.
func (c *Cluster) StartMaintenance(interval time.Duration) {
	c.maintEvery.Store(int64(interval))
	for _, b := range c.top().shards {
		b.StartMaintenance(interval)
	}
}

// StartCheckpointing starts every shard's checkpoint loop. The cadence is
// recorded so a shard rebuilt by the supervisor resumes it.
func (c *Cluster) StartCheckpointing(interval time.Duration) {
	c.ckptEvery.Store(int64(interval))
	for _, b := range c.top().shards {
		b.StartCheckpointing(interval)
	}
}

// Shutdown stops and flushes every shard. A migration still in flight is
// asked to park first (its marker stays on disk, so the next OpenCluster
// sweeps and the resize can be reissued). All shards are attempted; the
// first error is returned.
func (c *Cluster) Shutdown() error {
	c.StopSupervisor()
	if m := c.mig.Load(); m != nil {
		m.stopped.Store(true)
		select {
		case <-m.finished:
		case <-time.After(10 * time.Second):
		}
	}
	var first error
	for _, b := range c.top().shards {
		if b == nil {
			continue
		}
		if err := b.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats aggregates the operation counters across shards.
func (c *Cluster) Stats() core.Stats {
	var agg core.Stats
	for _, b := range c.top().shards {
		addStats(&agg, b.Stats())
	}
	return agg
}

// addStats sums every counter of s into dst. core.Stats is uniformly
// uint64 counters, which the reflection walk relies on.
func addStats(dst *core.Stats, s core.Stats) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(s)
	for i := 0; i < dv.NumField(); i++ {
		dv.Field(i).SetUint(dv.Field(i).Uint() + sv.Field(i).Uint())
	}
}

// ClusterClient is one application process attached to the cluster: a
// ClientProcess per shard, sharing one uid. Attachment to shards added by
// a later Resize happens lazily on first route there.
type ClusterClient struct {
	c   *Cluster
	uid int

	mu    sync.Mutex
	procs []*ClientProcess
	// books records which Bookkeeper each proc is attached to. When the
	// supervisor rebuilds a shard the topology entry changes identity;
	// the next access re-attaches to the replacement instead of carrying
	// calls into the dropped (poisoned) store forever.
	books []*Bookkeeper
}

// NewClientProcess attaches a client application to every current shard.
func (c *Cluster) NewClientProcess(uid int) (*ClusterClient, error) {
	cc := &ClusterClient{c: c, uid: uid}
	for i := range c.top().shards {
		if _, err := cc.proc(i); err != nil {
			return nil, err
		}
	}
	return cc, nil
}

// proc returns the per-shard client process, attaching on demand to
// shards that joined after this client was created and re-attaching when
// the supervisor has replaced the shard's Bookkeeper.
func (cc *ClusterClient) proc(shard int) (*ClientProcess, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for len(cc.procs) <= shard {
		i := len(cc.procs)
		b := cc.c.top().shards[i]
		cp, err := b.NewClientProcess(cc.uid)
		if err != nil {
			return nil, fmt.Errorf("memcached: shard %d attach: %w", i, err)
		}
		cc.procs = append(cc.procs, cp)
		cc.books = append(cc.books, b)
	}
	if b := cc.c.top().shards[shard]; cc.books[shard] != b {
		cp, err := b.NewClientProcess(cc.uid)
		if err != nil {
			return nil, fmt.Errorf("memcached: shard %d re-attach: %w", shard, err)
		}
		cc.procs[shard], cc.books[shard] = cp, b
	}
	return cc.procs[shard], nil
}

// Proc exposes the per-shard client process (fault injection in tests),
// attaching lazily like the data path does.
func (cc *ClusterClient) Proc(shard int) *ClientProcess {
	cp, err := cc.proc(shard)
	if err != nil {
		return nil
	}
	return cp
}

// Kill kills the client process on every attached shard.
func (cc *ClusterClient) Kill() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for _, cp := range cc.procs {
		cp.Kill()
	}
}

// NewSession opens one routed session: a per-shard Session bundle behind
// the Session-shaped API. Like Session, a ClusterSession models a thread
// and is not safe for concurrent use.
func (cc *ClusterClient) NewSession() (*ClusterSession, error) {
	cs := &ClusterSession{c: cc.c, cc: cc}
	for i := 0; i < cc.c.Shards(); i++ {
		if _, err := cs.sess(i); err != nil {
			cs.Close()
			return nil, err
		}
	}
	return cs, nil
}

// ClusterSession routes the Session API across shards: single-key ops go
// to the owning shard's fast lane; MGet/ExecBatch split into per-shard
// sub-batches so each shard still sees one gate crossing for its whole
// share of the batch. During a live resize every route goes through the
// dual-ring rules in routeHash, holding the key's segment guard across
// the shard access so a cutover can never slide under an in-flight op.
type ClusterSession struct {
	c        *Cluster
	cc       *ClusterClient
	sessions []*Session
	// books mirrors ClusterClient.books at session granularity: a
	// rebuilt shard's old session is dropped and a fresh one opened on
	// the replacement store.
	books []*Bookkeeper
}

// Session exposes the underlying per-shard session (tests, ablation).
func (s *ClusterSession) Session(shard int) *Session { return s.sessions[shard] }

// sess returns the per-shard session, attaching on demand to shards that
// joined after this session was opened. ClusterSession models a thread,
// so the slice needs no lock; the shared process table locks internally.
func (s *ClusterSession) sess(shard int) (*Session, error) {
	for len(s.sessions) <= shard {
		i := len(s.sessions)
		cp, err := s.cc.proc(i)
		if err != nil {
			return nil, err
		}
		ss, err := cp.NewSession()
		if err != nil {
			return nil, fmt.Errorf("memcached: shard %d session: %w", i, err)
		}
		s.sessions = append(s.sessions, ss)
		s.books = append(s.books, s.c.top().shards[i])
	}
	if b := s.c.top().shards[shard]; s.books[shard] != b {
		// The supervisor replaced this shard. proc() re-attaches at the
		// process level first; then open a fresh session on it. The old
		// session belongs to a poisoned store — dropped, not closed
		// (teardown would touch the dead heap's allocator).
		cp, err := s.cc.proc(shard)
		if err != nil {
			return nil, err
		}
		ss, err := cp.NewSession()
		if err != nil {
			return nil, fmt.Errorf("memcached: shard %d session re-attach: %w", shard, err)
		}
		s.sessions[shard], s.books[shard] = ss, b
	}
	return s.sessions[shard], nil
}

// Close closes every per-shard session.
func (s *ClusterSession) Close() {
	for _, ss := range s.sessions {
		if ss != nil {
			ss.Close()
		}
	}
}

// replicaOf returns the sibling shard that carries hot-key replicas for
// primary: the next shard on the ring.
func (c *Cluster) replicaOf(primary int) int { return (primary + 1) % len(c.top().shards) }

// Get retrieves a value, with hot-key read replication: once a key's read
// rate crosses the configured threshold, reads try the sibling replica
// first and re-replicate on a replica miss. Gets (CAS reads) never use
// the replica — CAS generations are per-shard. During a migration the
// replica path is suspended (trackers were reset at resize start) and
// reads in a moving segment hold the segment guard across the access.
func (s *ClusterSession) Get(key []byte) ([]byte, uint32, error) {
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	p, g := s.c.routeKey(key)
	if err := s.c.shardAllow(p); err != nil {
		if g != nil {
			g.release()
		}
		return nil, 0, err
	}
	if g != nil {
		ss, err := s.sess(p)
		if err != nil {
			s.c.shardReport(p, err)
			g.release()
			return nil, 0, err
		}
		v, f, err := ss.Get(key)
		s.c.shardReport(p, err)
		g.release()
		return v, f, err
	}
	top := s.c.top()
	if s.c.cfg.HotKeyThreshold > 0 && len(top.shards) > 1 && s.c.mig.Load() == nil {
		hot := top.hot[p].observe(key)
		if d := top.hot[p].takeDemoted(); d != nil {
			s.dropReplicas(p, d)
		}
		if hot {
			replica := s.c.replicaOf(p)
			// A replica behind an open breaker is skipped, not failed:
			// the primary stays the source of truth.
			rerr := s.c.shardAllow(replica)
			var rs *Session
			if rerr == nil {
				rs, rerr = s.sess(replica)
				if rerr != nil {
					s.c.shardReport(replica, rerr)
				}
			}
			if rerr == nil {
				v, f, err := rs.Get(key)
				s.c.shardReport(replica, err)
				if err == nil {
					s.c.replicaHits.Add(1)
					return v, f, nil
				}
			}
			// Replica miss — or a replica shard mid-repair; either way the
			// primary remains the source of truth.
			s.c.replicaMisses.Add(1)
			ps, err := s.sess(p)
			if err != nil {
				s.c.shardReport(p, err)
				return nil, 0, err
			}
			v, f, err := ps.Get(key)
			s.c.shardReport(p, err)
			if err != nil {
				return nil, 0, err
			}
			if rerr == nil && rs.Set(key, v, f, 0) == nil {
				s.c.replications.Add(1)
			}
			return v, f, nil
		}
	}
	ss, err := s.sess(p)
	if err != nil {
		s.c.shardReport(p, err)
		return nil, 0, err
	}
	v, f, err := ss.Get(key)
	s.c.shardReport(p, err)
	return v, f, err
}

// invalidate drops the hot-key replica after a successful mutation of a
// hot key, keeping the replica read path from serving the old value
// indefinitely.
func (s *ClusterSession) invalidate(primary int, key []byte) {
	top := s.c.top()
	if s.c.cfg.HotKeyThreshold == 0 || len(top.shards) < 2 {
		return
	}
	if !top.hot[primary].isHot(key) {
		return
	}
	rs, err := s.sess(s.c.replicaOf(primary))
	if err != nil {
		return
	}
	if rs.Delete(key) == nil {
		s.c.invalidations.Add(1)
	}
}

// dropReplicas deletes the ring-successor replicas of keys demoted from
// hot: once isHot turns false the write path stops invalidating them, so
// the copies must go before they can serve stale data to a later
// re-promotion.
func (s *ClusterSession) dropReplicas(primary int, keys []string) {
	rs, err := s.sess(s.c.replicaOf(primary))
	if err != nil {
		return
	}
	for _, k := range keys {
		if rs.Delete([]byte(k)) == nil {
			s.c.invalidations.Add(1)
		}
	}
}

// mutate runs one keyed write against the key's authoritative shard. When
// the key sits in a mid-migration segment, the write lands on the source
// shard under the segment's shared guard and is dirty-marked so the
// pre-cutover recopy carries it to the destination.
func (s *ClusterSession) mutate(key []byte, op func(ss *Session) error) error {
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	p, g := s.c.routeKey(key)
	if err := s.c.shardAllow(p); err != nil {
		if g != nil {
			g.release()
		}
		return err
	}
	ss, err := s.sess(p)
	if err != nil {
		// Attach failures feed the breaker too (a probe admitted by
		// allow must always be reported, or the probe slot leaks).
		s.c.shardReport(p, err)
		if g != nil {
			g.release()
		}
		return err
	}
	err = op(ss)
	s.c.shardReport(p, err)
	if g != nil {
		// Conservatively dirty even on error: a failed op may still have
		// observed state, and one extra recopy is cheaper than reasoning
		// about which error paths mutate.
		g.markDirty(key)
		g.release()
	}
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Gets also returns the CAS generation. Always served by the key's
// authoritative shard: replicas are never consulted, and the migrator
// preserves generations across a move, so the token stays valid.
func (s *ClusterSession) Gets(key []byte) ([]byte, uint32, uint64, error) {
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	p, g := s.c.routeKey(key)
	if err := s.c.shardAllow(p); err != nil {
		if g != nil {
			g.release()
		}
		return nil, 0, 0, err
	}
	ss, err := s.sess(p)
	if err != nil {
		s.c.shardReport(p, err)
		if g != nil {
			g.release()
		}
		return nil, 0, 0, err
	}
	v, f, cas, err := ss.Gets(key)
	s.c.shardReport(p, err)
	if g != nil {
		g.release()
	}
	return v, f, cas, err
}

// Set stores value under key on its owning shard.
func (s *ClusterSession) Set(key, value []byte, flags uint32, exptime int64) error {
	return s.mutate(key, func(ss *Session) error { return ss.Set(key, value, flags, exptime) })
}

// Add stores only if key is absent.
func (s *ClusterSession) Add(key, value []byte, flags uint32, exptime int64) error {
	return s.mutate(key, func(ss *Session) error { return ss.Add(key, value, flags, exptime) })
}

// Replace stores only if key is present.
func (s *ClusterSession) Replace(key, value []byte, flags uint32, exptime int64) error {
	return s.mutate(key, func(ss *Session) error { return ss.Replace(key, value, flags, exptime) })
}

// CAS stores only if the entry's generation matches on the owning shard.
func (s *ClusterSession) CAS(key, value []byte, flags uint32, exptime int64, cas uint64) error {
	return s.mutate(key, func(ss *Session) error { return ss.CAS(key, value, flags, exptime, cas) })
}

// Delete removes key from its owning shard (and its replica, if hot).
func (s *ClusterSession) Delete(key []byte) error {
	return s.mutate(key, func(ss *Session) error { return ss.Delete(key) })
}

// Increment adds delta to a numeric value on the owning shard.
func (s *ClusterSession) Increment(key []byte, delta uint64) (uint64, error) {
	var v uint64
	err := s.mutate(key, func(ss *Session) error {
		var e error
		v, e = ss.Increment(key, delta)
		return e
	})
	return v, err
}

// Decrement subtracts delta, saturating at zero.
func (s *ClusterSession) Decrement(key []byte, delta uint64) (uint64, error) {
	var v uint64
	err := s.mutate(key, func(ss *Session) error {
		var e error
		v, e = ss.Decrement(key, delta)
		return e
	})
	return v, err
}

// Append concatenates data after the existing value.
func (s *ClusterSession) Append(key, data []byte) error {
	return s.mutate(key, func(ss *Session) error { return ss.Append(key, data) })
}

// Prepend concatenates data before the existing value.
func (s *ClusterSession) Prepend(key, data []byte) error {
	return s.mutate(key, func(ss *Session) error { return ss.Prepend(key, data) })
}

// Touch updates an entry's expiry.
func (s *ClusterSession) Touch(key []byte, exptime int64) error {
	return s.mutate(key, func(ss *Session) error { return ss.Touch(key, exptime) })
}

// GetAndTouch retrieves a value and updates its expiry. Always primary:
// it mutates the entry's expiry, which must land on the owning shard.
func (s *ClusterSession) GetAndTouch(key []byte, exptime int64) ([]byte, uint32, error) {
	var v []byte
	var f uint32
	err := s.mutate(key, func(ss *Session) error {
		var e error
		v, f, e = ss.GetAndTouch(key, exptime)
		return e
	})
	return v, f, err
}

// FlushAll removes every entry on every shard (including shards still
// receiving a migration).
func (s *ClusterSession) FlushAll() error {
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	for i := 0; i < s.c.Shards(); i++ {
		ss, err := s.sess(i)
		if err != nil {
			return err
		}
		if err := ss.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates the store counters across shards.
func (s *ClusterSession) Stats() (core.Stats, error) {
	var agg core.Stats
	for i := 0; i < s.c.Shards(); i++ {
		ss, err := s.sess(i)
		if err != nil {
			return core.Stats{}, err
		}
		st, err := ss.Stats()
		if err != nil {
			return core.Stats{}, err
		}
		addStats(&agg, st)
	}
	return agg, nil
}

// MGet retrieves many keys, split into one sub-batch per owning shard so
// each involved shard pays exactly one gate crossing. Results come back
// positionally, in request order. A crossing-level failure on one shard
// no longer fails the whole call: that shard's keys report Found == false
// while the surviving shards' results stay correctly aligned.
func (s *ClusterSession) MGet(keys [][]byte) ([]core.GetResult, error) {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Code: BatchGet, Key: k}
	}
	res, err := s.ExecBatch(ops)
	if err != nil {
		return nil, err
	}
	out := make([]core.GetResult, len(res))
	for i := range res {
		if res[i].Err == nil {
			out[i] = core.GetResult{Value: res[i].Value, Flags: res[i].Flags, CAS: res[i].CAS, Found: true}
		}
	}
	return out, nil
}

// ExecBatch executes ops, partitioned into one sub-batch per owning
// shard: the one-crossing-per-shard amortization of the single-store
// ExecBatch is preserved — a k-op batch over a cluster costs at most one
// crossing per involved shard, not k. Results are reassembled into the
// original op order. A crossing-level failure on one shard (crash,
// reaped session, dead process) fills that shard's result slots with the
// wrapped error and the call continues: sibling shards' results stay
// positionally aligned and the call itself returns nil. During a
// migration, every touched segment's guard is acquired once (re-taking a
// held RLock could deadlock against the migrator's pending cutover) and
// held until every crossing retires.
func (s *ClusterSession) ExecBatch(ops []BatchOp) ([]BatchResult, error) {
	s.c.routeMu.RLock()
	defer s.c.routeMu.RUnlock()
	n := s.c.Shards()
	perShard := make([][]BatchOp, n)
	perIdx := make([][]int, n) // original position of each sub-batch op
	var held map[*migSeg]struct{}
	var guards []*migSeg
	if s.c.mig.Load() != nil {
		held = make(map[*migSeg]struct{})
	}
	defer func() {
		for _, g := range guards {
			g.release()
		}
	}()
	for i := range ops {
		sh, g := s.c.routeHash(ring.Hash(ops[i].Key), held)
		if g != nil {
			if _, ok := held[g]; !ok {
				held[g] = struct{}{}
				guards = append(guards, g)
			}
			if ops[i].Code != BatchGet && ops[i].Code != core.BatchExport {
				g.markDirty(ops[i].Key)
			}
		}
		perShard[sh] = append(perShard[sh], ops[i])
		perIdx[sh] = append(perIdx[sh], i)
	}
	out := make([]BatchResult, len(ops))
	for sh := 0; sh < n; sh++ {
		if len(perShard[sh]) == 0 {
			continue
		}
		// An open breaker fills this shard's slots with the typed
		// fast-fail without paying a crossing; sibling shards' results
		// keep their positional alignment either way.
		err := s.c.shardAllow(sh)
		crossed := err == nil
		var res []BatchResult
		if err == nil {
			var ss *Session
			ss, err = s.sess(sh)
			if err == nil {
				res, err = ss.ExecBatch(perShard[sh])
			}
		}
		if crossed {
			s.c.shardReport(sh, err)
		}
		if err != nil {
			werr := fmt.Errorf("memcached: shard %d batch: %w", sh, err)
			for _, idx := range perIdx[sh] {
				out[idx].Err = werr
			}
			continue
		}
		for j, idx := range perIdx[sh] {
			out[idx] = res[j]
		}
	}
	return out, nil
}

// Healthy reports whether every attached per-shard session can still
// carry calls.
func (s *ClusterSession) Healthy() bool {
	for _, ss := range s.sessions {
		if ss != nil && !ss.Healthy() {
			return false
		}
	}
	return true
}

// ShardState is one shard's coarse health for the metrics plane.
type ShardState int

// Shard states, exported as plibmc_shard_state.
const (
	ShardHealthy    ShardState = 0
	ShardRecovering ShardState = 1
	ShardPoisoned   ShardState = 2
	// ShardRebuilding: the supervisor is running the recovery ladder on
	// this shard (detach → reopen from image → rebuild empty). Calls
	// fail fast behind the breaker until the replacement is attached.
	ShardRebuilding ShardState = 3
)

// State reports shard i's coarse health.
func (c *Cluster) State(i int) ShardState {
	if hs := c.health.Load(); hs != nil && i < len(*hs) && (*hs)[i].rebuilding.Load() {
		return ShardRebuilding
	}
	lib := c.top().shards[i].Library()
	switch {
	case lib.Poisoned():
		return ShardPoisoned
	case lib.Recovering():
		return ShardRecovering
	default:
		return ShardHealthy
	}
}

// HotKeyMetrics is the cluster-wide hot-key traffic snapshot.
type HotKeyMetrics struct {
	Detected      uint64 // keys ever promoted to hot, summed over shards
	ReplicaHits   uint64
	ReplicaMisses uint64
	Replications  uint64
	Invalidations uint64
}

// MigrationMetrics is the live-resharding snapshot: the cumulative
// counters plus the current migration's progress (zero-valued when idle).
type MigrationMetrics struct {
	State         int // 0 idle, 1 migrating
	Resizes       uint64
	SegmentsMoved uint64 // segments cut over, cumulative
	KeysMoved     uint64 // entries installed on a destination, cumulative
	Retries       uint64 // migrator attempts restarted after a crash
	SegmentsTotal int    // current migration's plan size
	SegmentsDone  int    // current migration's cutovers so far
}

// ClusterMetrics is the per-shard metrics snapshot plus the hot-key and
// migration counters.
type ClusterMetrics struct {
	Shards     []Metrics
	States     []ShardState
	HotKey     HotKeyMetrics
	Migration  MigrationMetrics
	Supervisor SupervisorMetrics
}

// Metrics collects every shard's merged snapshot.
func (c *Cluster) Metrics() ClusterMetrics {
	top := c.top()
	cm := ClusterMetrics{HotKey: HotKeyMetrics{
		ReplicaHits:   c.replicaHits.Load(),
		ReplicaMisses: c.replicaMisses.Load(),
		Replications:  c.replications.Load(),
		Invalidations: c.invalidations.Load(),
	}}
	cm.Migration = MigrationMetrics{
		Resizes:       c.resizes.Load(),
		SegmentsMoved: c.segsMoved.Load(),
		KeysMoved:     c.keysMoved.Load(),
		Retries:       c.migRetries.Load(),
	}
	if m := c.mig.Load(); m != nil {
		cm.Migration.State = 1
		cm.Migration.SegmentsTotal = len(m.segs)
		cm.Migration.SegmentsDone = m.segmentsDone()
	}
	cm.Supervisor = c.supervisorMetrics()
	for i, b := range top.shards {
		cm.Shards = append(cm.Shards, b.Metrics())
		cm.States = append(cm.States, c.State(i))
		_, det := top.hot[i].snapshot()
		cm.HotKey.Detected += det
	}
	return cm
}

// HotKeys returns shard i's tracked top-k read counts.
func (c *Cluster) HotKeys(shard int) []HotKey {
	hk, _ := c.top().hot[shard].snapshot()
	return hk
}

// Samples renders the cluster snapshot as Prometheus samples: the
// per-shard routing/health plane, then each shard's full store snapshot
// under a shard label.
func (cm *ClusterMetrics) Samples() []metrics.Sample {
	var out []metrics.Sample
	for i := range cm.Shards {
		m := &cm.Shards[i]
		shard := fmt.Sprintf("%d", i)
		g := func(name string, v float64, labels ...string) {
			out = append(out, metrics.Sample{
				Name:   name,
				Labels: metrics.L(append([]string{"shard", shard}, labels...)...),
				Value:  v,
			})
		}
		g("plibmc_shard_ops_total", float64(m.Ops.Gets), "op", "get")
		g("plibmc_shard_ops_total", float64(m.Ops.Sets), "op", "set")
		g("plibmc_shard_ops_total", float64(m.Ops.Deletes), "op", "delete")
		g("plibmc_shard_ops_total", float64(m.Ops.Incrs), "op", "incr")
		g("plibmc_shard_ops_total", float64(m.Ops.Decrs), "op", "decr")
		g("plibmc_shard_ops_total", float64(m.Ops.Touches), "op", "touch")
		g("plibmc_shard_state", float64(cm.States[i]))
		g("plibmc_shard_curr_items", float64(m.Ops.CurrItems))
		g("plibmc_shard_bytes", float64(m.Ops.Bytes))
		g("plibmc_shard_repairs_total", float64(m.Recovery.Repairs))
		g("plibmc_shard_checkpoint_last_generation", float64(m.Checkpoint.LastGeneration))
		g("plibmc_shard_checkpoint_failures_total", float64(m.Checkpoint.Failures))
	}
	out = append(out,
		metrics.Sample{Name: "plibmc_hotkey_detected_total", Value: float64(cm.HotKey.Detected)},
		metrics.Sample{Name: "plibmc_hotkey_replica_hits_total", Value: float64(cm.HotKey.ReplicaHits)},
		metrics.Sample{Name: "plibmc_hotkey_replica_misses_total", Value: float64(cm.HotKey.ReplicaMisses)},
		metrics.Sample{Name: "plibmc_hotkey_replications_total", Value: float64(cm.HotKey.Replications)},
		metrics.Sample{Name: "plibmc_hotkey_invalidations_total", Value: float64(cm.HotKey.Invalidations)},
		metrics.Sample{Name: "plibmc_migration_state", Value: float64(cm.Migration.State)},
		metrics.Sample{Name: "plibmc_migration_resizes_total", Value: float64(cm.Migration.Resizes)},
		metrics.Sample{Name: "plibmc_migration_segments_moved_total", Value: float64(cm.Migration.SegmentsMoved)},
		metrics.Sample{Name: "plibmc_migration_keys_moved_total", Value: float64(cm.Migration.KeysMoved)},
		metrics.Sample{Name: "plibmc_migration_retries_total", Value: float64(cm.Migration.Retries)},
		metrics.Sample{Name: "plibmc_shard_rebuilds_total", Value: float64(cm.Supervisor.Rebuilds)},
		metrics.Sample{Name: "plibmc_shard_rebuilt_empty_total", Value: float64(cm.Supervisor.RebuiltEmpty)},
		metrics.Sample{Name: "plibmc_shard_rebuild_failures_total", Value: float64(cm.Supervisor.RebuildFailures)},
		metrics.Sample{Name: "plibmc_shard_rebuilt_at_open", Value: float64(cm.Supervisor.RebuiltAtOpen)},
		metrics.Sample{Name: "plibmc_breaker_trips_total", Value: float64(cm.Supervisor.BreakerTrips)},
		metrics.Sample{Name: "plibmc_breaker_fast_fails_total", Value: float64(cm.Supervisor.BreakerFastFails)},
		metrics.Sample{Name: "plibmc_shard_rebuild_last_seconds", Value: cm.Supervisor.LastRebuildDuration.Seconds()},
	)
	return out
}

// Vars renders a flat expvar-style map: aggregate counters plus per-shard
// state.
func (cm *ClusterMetrics) Vars() map[string]any {
	var ops core.Stats
	for i := range cm.Shards {
		addStats(&ops, cm.Shards[i].Ops)
	}
	v := map[string]any{
		"shards":                   len(cm.Shards),
		"cmd_get":                  ops.Gets,
		"cmd_set":                  ops.Sets,
		"cmd_delete":               ops.Deletes,
		"curr_items":               ops.CurrItems,
		"bytes":                    ops.Bytes,
		"hotkey_detected":          cm.HotKey.Detected,
		"hotkey_replica_hits":      cm.HotKey.ReplicaHits,
		"hotkey_replica_misses":    cm.HotKey.ReplicaMisses,
		"hotkey_replications":      cm.HotKey.Replications,
		"hotkey_invalidations":     cm.HotKey.Invalidations,
		"migration_state":          cm.Migration.State,
		"migration_resizes":        cm.Migration.Resizes,
		"migration_segments_moved": cm.Migration.SegmentsMoved,
		"migration_keys_moved":     cm.Migration.KeysMoved,
		"migration_retries":        cm.Migration.Retries,
		"shard_rebuilds":           cm.Supervisor.Rebuilds,
		"shard_rebuilt_empty":      cm.Supervisor.RebuiltEmpty,
		"shard_rebuild_failures":   cm.Supervisor.RebuildFailures,
		"shard_rebuilt_at_open":    cm.Supervisor.RebuiltAtOpen,
		"breaker_trips":            cm.Supervisor.BreakerTrips,
		"breaker_fast_fails":       cm.Supervisor.BreakerFastFails,
	}
	for i, st := range cm.States {
		v[fmt.Sprintf("shard_%d_state", i)] = int(st)
	}
	return v
}

// MetricsHandler serves /metrics and /debug/vars for the whole cluster.
func (c *Cluster) MetricsHandler() http.Handler {
	return metrics.Handler(func() ([]metrics.Sample, map[string]any) {
		cm := c.Metrics()
		return cm.Samples(), cm.Vars()
	})
}
