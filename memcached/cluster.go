package memcached

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/metrics"
	"plibmc/internal/ring"
)

// A Cluster fans one keyspace across N independent protected-library
// stores. Each shard is a full Bookkeeper — its own shared heap, backing
// file, A/B checkpoint slots, repair coordinator, and watchdog — so a
// crash, scrub, or repair pass on one shard never stalls the others: the
// isolation boundary of the paper's single store becomes the isolation
// boundary of each shard. Keys are placed by a deterministic consistent-
// hash ring (internal/ring) that the in-process fast lane, the socket
// proxy (proxy.go), and offline tooling (plibdump over a shard directory)
// all share.

// ShardImageName returns the backing-file name of shard i inside a
// cluster directory — the naming contract between the cluster and
// plibdump's directory mode.
func ShardImageName(i int) string { return fmt.Sprintf("shard-%03d.img", i) }

// ClusterConfig configures a sharded store.
type ClusterConfig struct {
	// Shards is the store count. Required, ≥ 1.
	Shards int
	// VirtualNodes per shard on the ring (0 = ring.DefaultVirtualNodes).
	VirtualNodes int
	// Dir, when set, holds one backing file per shard (shard-000.img …);
	// each shard gets its own A/B checkpoint slots beside its image.
	// Empty means every shard is in-memory only.
	Dir string
	// Store is the per-shard configuration template. Path is overridden
	// per shard (from Dir); every other field applies to each shard.
	Store Config

	// HotKeyThreshold is the windowed read count at which a key is
	// declared hot and its reads start replicating to the next shard on
	// the ring. 0 disables hot-key handling entirely.
	HotKeyThreshold uint64
	// HotKeyWindow is the decay period of the hot-key counters, in
	// observed reads per shard (0 = 65536).
	HotKeyWindow uint64
}

// Cluster is the multi-store handle.
type Cluster struct {
	cfg    ClusterConfig
	ring   *ring.Ring
	shards []*Bookkeeper
	hot    []*hotTracker

	// Hot-key traffic accounting (cluster-wide).
	replicaHits   atomic.Uint64 // hot reads served by the sibling shard
	replicaMisses atomic.Uint64 // hot reads that fell through to the primary
	replications  atomic.Uint64 // values copied to a sibling after a fall-through
	invalidations atomic.Uint64 // replica deletes issued by the write path
}

func (cfg *ClusterConfig) ring() (*ring.Ring, error) {
	return ring.New(cfg.Shards, cfg.VirtualNodes)
}

func (cfg *ClusterConfig) shardConfig(i int) Config {
	sc := cfg.Store
	if cfg.Dir != "" {
		sc.Path = filepath.Join(cfg.Dir, ShardImageName(i))
	} else {
		sc.Path = ""
	}
	return sc
}

// CreateCluster formats N fresh shards.
func CreateCluster(cfg ClusterConfig) (*Cluster, error) {
	r, err := cfg.ring()
	if err != nil {
		return nil, err
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("memcached: cluster dir: %w", err)
		}
	}
	c := &Cluster{cfg: cfg, ring: r}
	for i := 0; i < cfg.Shards; i++ {
		b, err := CreateStore(cfg.shardConfig(i))
		if err != nil {
			c.Shutdown() //nolint:errcheck
			return nil, fmt.Errorf("memcached: shard %d: %w", i, err)
		}
		b.Store().SeedCAS(shardCASBase(i))
		c.shards = append(c.shards, b)
		c.hot = append(c.hot, newHotTracker(cfg.HotKeyThreshold, cfg.HotKeyWindow))
	}
	return c, nil
}

// shardCASBase puts each shard's CAS generations in a disjoint space
// (shard index in the top 16 bits of a 64-bit counter), so a CAS token
// identifies one write cluster-wide. Per-shard traffic would need 2^48
// mutations to spill into a neighbour's space.
func shardCASBase(i int) uint64 { return uint64(i) << 48 }

// OpenCluster reloads every shard from its backing file under cfg.Dir.
// Each shard goes through the candidate-fallback load (base image plus
// A/B checkpoint slots, newest verifying generation first) independently.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("memcached: OpenCluster requires a directory")
	}
	r, err := cfg.ring()
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, ring: r}
	for i := 0; i < cfg.Shards; i++ {
		b, err := OpenStore(cfg.shardConfig(i))
		if err != nil {
			c.Shutdown() //nolint:errcheck
			return nil, fmt.Errorf("memcached: shard %d: %w", i, err)
		}
		b.Store().SeedCAS(shardCASBase(i)) // no-op past the base; see SeedCAS
		c.shards = append(c.shards, b)
		c.hot = append(c.hot, newHotTracker(cfg.HotKeyThreshold, cfg.HotKeyWindow))
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard exposes one shard's Bookkeeper (fault injection, per-shard
// maintenance, direct inspection).
func (c *Cluster) Shard(i int) *Bookkeeper { return c.shards[i] }

// Ring exposes the placement ring.
func (c *Cluster) Ring() *ring.Ring { return c.ring }

// ShardFor returns the shard owning key.
func (c *Cluster) ShardFor(key []byte) int { return c.ring.Shard(key) }

// StartMaintenance starts every shard's maintenance loop.
func (c *Cluster) StartMaintenance(interval time.Duration) {
	for _, b := range c.shards {
		b.StartMaintenance(interval)
	}
}

// StartCheckpointing starts every shard's checkpoint loop.
func (c *Cluster) StartCheckpointing(interval time.Duration) {
	for _, b := range c.shards {
		b.StartCheckpointing(interval)
	}
}

// Shutdown stops and flushes every shard. All shards are attempted; the
// first error is returned.
func (c *Cluster) Shutdown() error {
	var first error
	for _, b := range c.shards {
		if b == nil {
			continue
		}
		if err := b.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats aggregates the operation counters across shards.
func (c *Cluster) Stats() core.Stats {
	var agg core.Stats
	for _, b := range c.shards {
		addStats(&agg, b.Stats())
	}
	return agg
}

// addStats sums every counter of s into dst. core.Stats is uniformly
// uint64 counters, which the reflection walk relies on.
func addStats(dst *core.Stats, s core.Stats) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(s)
	for i := 0; i < dv.NumField(); i++ {
		dv.Field(i).SetUint(dv.Field(i).Uint() + sv.Field(i).Uint())
	}
}

// ClusterClient is one application process attached to every shard: a
// ClientProcess per shard, sharing one uid.
type ClusterClient struct {
	c     *Cluster
	procs []*ClientProcess
}

// NewClientProcess attaches a client application to every shard.
func (c *Cluster) NewClientProcess(uid int) (*ClusterClient, error) {
	cc := &ClusterClient{c: c}
	for i, b := range c.shards {
		cp, err := b.NewClientProcess(uid)
		if err != nil {
			return nil, fmt.Errorf("memcached: shard %d attach: %w", i, err)
		}
		cc.procs = append(cc.procs, cp)
	}
	return cc, nil
}

// Proc exposes the per-shard client process (fault injection in tests).
func (cc *ClusterClient) Proc(shard int) *ClientProcess { return cc.procs[shard] }

// Kill kills the client process on every shard.
func (cc *ClusterClient) Kill() {
	for _, cp := range cc.procs {
		cp.Kill()
	}
}

// NewSession opens one routed session: a per-shard Session bundle behind
// the Session-shaped API. Like Session, a ClusterSession models a thread
// and is not safe for concurrent use.
func (cc *ClusterClient) NewSession() (*ClusterSession, error) {
	cs := &ClusterSession{c: cc.c}
	for i, cp := range cc.procs {
		s, err := cp.NewSession()
		if err != nil {
			cs.Close()
			return nil, fmt.Errorf("memcached: shard %d session: %w", i, err)
		}
		cs.sessions = append(cs.sessions, s)
	}
	return cs, nil
}

// ClusterSession routes the Session API across shards: single-key ops go
// to the owning shard's fast lane; MGet/ExecBatch split into per-shard
// sub-batches so each shard still sees one gate crossing for its whole
// share of the batch.
type ClusterSession struct {
	c        *Cluster
	sessions []*Session
}

// Session exposes the underlying per-shard session (tests, ablation).
func (s *ClusterSession) Session(shard int) *Session { return s.sessions[shard] }

// Close closes every per-shard session.
func (s *ClusterSession) Close() {
	for _, ss := range s.sessions {
		if ss != nil {
			ss.Close()
		}
	}
}

func (s *ClusterSession) shard(key []byte) int { return s.c.ring.Shard(key) }

// replicaOf returns the sibling shard that carries hot-key replicas for
// primary: the next shard on the ring.
func (c *Cluster) replicaOf(primary int) int { return (primary + 1) % len(c.shards) }

// Get retrieves a value, with hot-key read replication: once a key's read
// rate crosses the configured threshold, reads try the sibling replica
// first and re-replicate on a replica miss. Gets (CAS reads) never use
// the replica — CAS generations are per-shard.
func (s *ClusterSession) Get(key []byte) ([]byte, uint32, error) {
	primary := s.shard(key)
	if s.c.cfg.HotKeyThreshold > 0 && len(s.sessions) > 1 && s.c.hot[primary].observe(key) {
		replica := s.c.replicaOf(primary)
		if v, f, err := s.sessions[replica].Get(key); err == nil {
			s.c.replicaHits.Add(1)
			return v, f, nil
		}
		// Replica miss — or a replica shard mid-repair; either way the
		// primary remains the source of truth.
		s.c.replicaMisses.Add(1)
		v, f, err := s.sessions[primary].Get(key)
		if err != nil {
			return nil, 0, err
		}
		if s.sessions[replica].Set(key, v, f, 0) == nil {
			s.c.replications.Add(1)
		}
		return v, f, nil
	}
	return s.sessions[primary].Get(key)
}

// invalidate drops the hot-key replica after a successful mutation of a
// hot key, keeping the replica read path from serving the old value
// indefinitely.
func (s *ClusterSession) invalidate(primary int, key []byte) {
	if s.c.cfg.HotKeyThreshold == 0 || len(s.sessions) < 2 {
		return
	}
	if !s.c.hot[primary].isHot(key) {
		return
	}
	if s.sessions[s.c.replicaOf(primary)].Delete(key) == nil {
		s.c.invalidations.Add(1)
	}
}

// Gets also returns the CAS generation. Always served by the primary:
// CAS generations are per-shard, so a replica's generation would never
// validate against the primary.
func (s *ClusterSession) Gets(key []byte) ([]byte, uint32, uint64, error) {
	return s.sessions[s.shard(key)].Gets(key)
}

// Set stores value under key on its owning shard.
func (s *ClusterSession) Set(key, value []byte, flags uint32, exptime int64) error {
	p := s.shard(key)
	err := s.sessions[p].Set(key, value, flags, exptime)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Add stores only if key is absent.
func (s *ClusterSession) Add(key, value []byte, flags uint32, exptime int64) error {
	p := s.shard(key)
	err := s.sessions[p].Add(key, value, flags, exptime)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Replace stores only if key is present.
func (s *ClusterSession) Replace(key, value []byte, flags uint32, exptime int64) error {
	p := s.shard(key)
	err := s.sessions[p].Replace(key, value, flags, exptime)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// CAS stores only if the entry's generation matches on the owning shard.
func (s *ClusterSession) CAS(key, value []byte, flags uint32, exptime int64, cas uint64) error {
	p := s.shard(key)
	err := s.sessions[p].CAS(key, value, flags, exptime, cas)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Delete removes key from its owning shard (and its replica, if hot).
func (s *ClusterSession) Delete(key []byte) error {
	p := s.shard(key)
	err := s.sessions[p].Delete(key)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Increment adds delta to a numeric value on the owning shard.
func (s *ClusterSession) Increment(key []byte, delta uint64) (uint64, error) {
	p := s.shard(key)
	v, err := s.sessions[p].Increment(key, delta)
	if err == nil {
		s.invalidate(p, key)
	}
	return v, err
}

// Decrement subtracts delta, saturating at zero.
func (s *ClusterSession) Decrement(key []byte, delta uint64) (uint64, error) {
	p := s.shard(key)
	v, err := s.sessions[p].Decrement(key, delta)
	if err == nil {
		s.invalidate(p, key)
	}
	return v, err
}

// Append concatenates data after the existing value.
func (s *ClusterSession) Append(key, data []byte) error {
	p := s.shard(key)
	err := s.sessions[p].Append(key, data)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Prepend concatenates data before the existing value.
func (s *ClusterSession) Prepend(key, data []byte) error {
	p := s.shard(key)
	err := s.sessions[p].Prepend(key, data)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// Touch updates an entry's expiry.
func (s *ClusterSession) Touch(key []byte, exptime int64) error {
	p := s.shard(key)
	err := s.sessions[p].Touch(key, exptime)
	if err == nil {
		s.invalidate(p, key)
	}
	return err
}

// GetAndTouch retrieves a value and updates its expiry. Always primary:
// it mutates the entry's expiry, which must land on the owning shard.
func (s *ClusterSession) GetAndTouch(key []byte, exptime int64) ([]byte, uint32, error) {
	p := s.shard(key)
	v, f, err := s.sessions[p].GetAndTouch(key, exptime)
	if err == nil {
		s.invalidate(p, key)
	}
	return v, f, err
}

// FlushAll removes every entry on every shard.
func (s *ClusterSession) FlushAll() error {
	for _, ss := range s.sessions {
		if err := ss.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// Stats aggregates the store counters across shards.
func (s *ClusterSession) Stats() (core.Stats, error) {
	var agg core.Stats
	for _, ss := range s.sessions {
		st, err := ss.Stats()
		if err != nil {
			return core.Stats{}, err
		}
		addStats(&agg, st)
	}
	return agg, nil
}

// MGet retrieves many keys, split into one sub-batch per owning shard so
// each involved shard pays exactly one gate crossing. Results come back
// positionally, in request order. Like Session.MGet, a crossing-level
// failure on any shard fails the whole call.
func (s *ClusterSession) MGet(keys [][]byte) ([]core.GetResult, error) {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Code: BatchGet, Key: k}
	}
	res, err := s.ExecBatch(ops)
	if err != nil {
		return nil, err
	}
	out := make([]core.GetResult, len(res))
	for i := range res {
		if res[i].Err == nil {
			out[i] = core.GetResult{Value: res[i].Value, Flags: res[i].Flags, CAS: res[i].CAS, Found: true}
		}
	}
	return out, nil
}

// ExecBatch executes ops, partitioned into one sub-batch per owning
// shard: the one-crossing-per-shard amortization of the single-store
// ExecBatch is preserved — a k-op batch over a cluster costs at most one
// crossing per involved shard, not k. Results are reassembled into the
// original op order. A crossing-level failure on any shard fails the
// whole call (per-op outcomes still land in each BatchResult.Err).
func (s *ClusterSession) ExecBatch(ops []BatchOp) ([]BatchResult, error) {
	n := len(s.sessions)
	perShard := make([][]BatchOp, n)
	perIdx := make([][]int, n) // original position of each sub-batch op
	for i := range ops {
		sh := s.shard(ops[i].Key)
		perShard[sh] = append(perShard[sh], ops[i])
		perIdx[sh] = append(perIdx[sh], i)
	}
	out := make([]BatchResult, len(ops))
	for sh := 0; sh < n; sh++ {
		if len(perShard[sh]) == 0 {
			continue
		}
		res, err := s.sessions[sh].ExecBatch(perShard[sh])
		if err != nil {
			return nil, fmt.Errorf("memcached: shard %d batch: %w", sh, err)
		}
		for j, idx := range perIdx[sh] {
			out[idx] = res[j]
		}
	}
	return out, nil
}

// Healthy reports whether every per-shard session can still carry calls.
func (s *ClusterSession) Healthy() bool {
	for _, ss := range s.sessions {
		if !ss.Healthy() {
			return false
		}
	}
	return true
}

// ShardState is one shard's coarse health for the metrics plane.
type ShardState int

// Shard states, exported as plibmc_shard_state.
const (
	ShardHealthy    ShardState = 0
	ShardRecovering ShardState = 1
	ShardPoisoned   ShardState = 2
)

// State reports shard i's coarse health.
func (c *Cluster) State(i int) ShardState {
	lib := c.shards[i].Library()
	switch {
	case lib.Poisoned():
		return ShardPoisoned
	case lib.Recovering():
		return ShardRecovering
	default:
		return ShardHealthy
	}
}

// HotKeyMetrics is the cluster-wide hot-key traffic snapshot.
type HotKeyMetrics struct {
	Detected      uint64 // keys ever promoted to hot, summed over shards
	ReplicaHits   uint64
	ReplicaMisses uint64
	Replications  uint64
	Invalidations uint64
}

// ClusterMetrics is the per-shard metrics snapshot plus the hot-key
// counters.
type ClusterMetrics struct {
	Shards []Metrics
	States []ShardState
	HotKey HotKeyMetrics
}

// Metrics collects every shard's merged snapshot.
func (c *Cluster) Metrics() ClusterMetrics {
	cm := ClusterMetrics{HotKey: HotKeyMetrics{
		ReplicaHits:   c.replicaHits.Load(),
		ReplicaMisses: c.replicaMisses.Load(),
		Replications:  c.replications.Load(),
		Invalidations: c.invalidations.Load(),
	}}
	for i, b := range c.shards {
		cm.Shards = append(cm.Shards, b.Metrics())
		cm.States = append(cm.States, c.State(i))
		_, det := c.hot[i].snapshot()
		cm.HotKey.Detected += det
	}
	return cm
}

// HotKeys returns shard i's tracked top-k read counts.
func (c *Cluster) HotKeys(shard int) []HotKey {
	hk, _ := c.hot[shard].snapshot()
	return hk
}

// Samples renders the cluster snapshot as Prometheus samples: the
// per-shard routing/health plane, then each shard's full store snapshot
// under a shard label.
func (cm *ClusterMetrics) Samples() []metrics.Sample {
	var out []metrics.Sample
	for i := range cm.Shards {
		m := &cm.Shards[i]
		shard := fmt.Sprintf("%d", i)
		g := func(name string, v float64, labels ...string) {
			out = append(out, metrics.Sample{
				Name:   name,
				Labels: metrics.L(append([]string{"shard", shard}, labels...)...),
				Value:  v,
			})
		}
		g("plibmc_shard_ops_total", float64(m.Ops.Gets), "op", "get")
		g("plibmc_shard_ops_total", float64(m.Ops.Sets), "op", "set")
		g("plibmc_shard_ops_total", float64(m.Ops.Deletes), "op", "delete")
		g("plibmc_shard_ops_total", float64(m.Ops.Incrs), "op", "incr")
		g("plibmc_shard_ops_total", float64(m.Ops.Decrs), "op", "decr")
		g("plibmc_shard_ops_total", float64(m.Ops.Touches), "op", "touch")
		g("plibmc_shard_state", float64(cm.States[i]))
		g("plibmc_shard_curr_items", float64(m.Ops.CurrItems))
		g("plibmc_shard_bytes", float64(m.Ops.Bytes))
		g("plibmc_shard_repairs_total", float64(m.Recovery.Repairs))
		g("plibmc_shard_checkpoint_last_generation", float64(m.Checkpoint.LastGeneration))
	}
	out = append(out,
		metrics.Sample{Name: "plibmc_hotkey_detected_total", Value: float64(cm.HotKey.Detected)},
		metrics.Sample{Name: "plibmc_hotkey_replica_hits_total", Value: float64(cm.HotKey.ReplicaHits)},
		metrics.Sample{Name: "plibmc_hotkey_replica_misses_total", Value: float64(cm.HotKey.ReplicaMisses)},
		metrics.Sample{Name: "plibmc_hotkey_replications_total", Value: float64(cm.HotKey.Replications)},
		metrics.Sample{Name: "plibmc_hotkey_invalidations_total", Value: float64(cm.HotKey.Invalidations)},
	)
	return out
}

// Vars renders a flat expvar-style map: aggregate counters plus per-shard
// state.
func (cm *ClusterMetrics) Vars() map[string]any {
	var ops core.Stats
	for i := range cm.Shards {
		addStats(&ops, cm.Shards[i].Ops)
	}
	v := map[string]any{
		"shards":                len(cm.Shards),
		"cmd_get":               ops.Gets,
		"cmd_set":               ops.Sets,
		"cmd_delete":            ops.Deletes,
		"curr_items":            ops.CurrItems,
		"bytes":                 ops.Bytes,
		"hotkey_detected":       cm.HotKey.Detected,
		"hotkey_replica_hits":   cm.HotKey.ReplicaHits,
		"hotkey_replica_misses": cm.HotKey.ReplicaMisses,
		"hotkey_replications":   cm.HotKey.Replications,
		"hotkey_invalidations":  cm.HotKey.Invalidations,
	}
	for i, st := range cm.States {
		v[fmt.Sprintf("shard_%d_state", i)] = int(st)
	}
	return v
}

// MetricsHandler serves /metrics and /debug/vars for the whole cluster.
func (c *Cluster) MetricsHandler() http.Handler {
	return metrics.Handler(func() ([]metrics.Sample, map[string]any) {
		cm := c.Metrics()
		return cm.Samples(), cm.Vars()
	})
}
