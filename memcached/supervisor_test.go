package memcached

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/internal/hodor"
	"plibmc/internal/shm"
)

// keyOwnedBy returns a key the placement ring routes to the given shard.
func keyOwnedBy(t testing.TB, c *Cluster, shard int, prefix string) []byte {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := []byte(fmt.Sprintf("%s-%d", prefix, i))
		if c.ShardFor(k) == shard {
			return k
		}
	}
	t.Fatalf("ring never routed a %q key to shard %d", prefix, shard)
	return nil
}

// poisonShard forces an unrepairable crash on the victim shard: a doomed
// client is killed mid-mutation (ops.store.mid_swap) and the repair pass
// itself is made to fail (recover.repair_fail), so hodor's ladder ends in
// poison — the state the supervisor exists to clear.
func poisonShard(t *testing.T, c *Cluster, victim int) {
	t.Helper()
	if err := faultpoint.Arm("recover.repair_fail", func() {
		panic("supervisor_test: injected unrepairable repair")
	}); err != nil {
		t.Fatal(err)
	}
	dcc, err := c.NewClientProcess(6000 + victim)
	if err != nil {
		t.Fatal(err)
	}
	dsess, err := dcc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	if err := faultpoint.Arm("ops.store.mid_swap", func() {
		fired.Store(true)
		dcc.Proc(victim).Kill()
		panic("supervisor_test: injected crash at ops.store.mid_swap")
	}); err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, c, victim, "doom")
	deadline := time.Now().Add(10 * time.Second)
	for !fired.Load() {
		dsess.Set(key, []byte("doomed"), 0, 0) //nolint:errcheck // dies by design
		if time.Now().After(deadline) {
			t.Fatal("doomed mutations never reached ops.store.mid_swap")
		}
	}
	lib := c.Shard(victim).Library()
	for !lib.Poisoned() {
		if time.Now().After(deadline) {
			t.Fatal("victim shard never poisoned after the failed repair")
		}
		time.Sleep(time.Millisecond)
	}
}

func supervisorTestConfig() ClusterConfig {
	return ClusterConfig{
		Store: Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
			CallTimeout: 50 * time.Millisecond, RecoveryGrace: 200 * time.Millisecond,
		},
	}
}

// The tentpole claim, in-memory form: a poisoned shard with no backing
// image is detached, rebuilt empty, and re-attached by one supervisor
// pass — no operator action — while survivors keep their data; existing
// handles re-attach and the rebuilt shard serves fresh writes with CAS
// tokens seeded past the dead store's high-water mark.
func TestSupervisorRebuildsPoisonedShardEmpty(t *testing.T) {
	defer faultpoint.DisarmAll()
	c := newTestCluster(t, 4, supervisorTestConfig())
	s := newClusterSession(t, c)

	perShard := make([][]string, 4)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sup%03d", i)
		if err := s.Set([]byte(key), []byte("v0"), 0, 0); err != nil {
			t.Fatal(err)
		}
		sh := c.ShardFor([]byte(key))
		perShard[sh] = append(perShard[sh], key)
	}
	const victim = 0
	if len(perShard[victim]) < 2 {
		t.Fatalf("victim shard owns %d keys; ring routing is degenerate", len(perShard[victim]))
	}

	old := c.Shard(victim)
	poisonShard(t, c, victim)
	preCAS := old.Store().CASCounter()
	if st := c.State(victim); st != ShardPoisoned {
		t.Fatalf("state after failed repair = %d, want poisoned", st)
	}

	// Before the supervisor runs: the first call pays the gate's poison
	// verdict and trips the breaker; the second fails fast with the typed
	// retryable error.
	if _, _, err := s.Get([]byte(perShard[victim][0])); err == nil {
		t.Fatal("get on poisoned shard succeeded")
	}
	if _, _, err := s.Get([]byte(perShard[victim][1])); !errors.Is(err, ErrShardDown) {
		t.Fatalf("second get = %v, want breaker fast-fail", err)
	}

	c.SuperviseOnce(time.Now())

	if c.Shard(victim) == old {
		t.Fatal("supervisor did not replace the poisoned bookkeeper")
	}
	if st := c.State(victim); st != ShardHealthy {
		t.Fatalf("state after rebuild = %d, want healthy", st)
	}
	m := c.supervisorMetrics()
	if m.Rebuilds != 1 || m.RebuiltEmpty != 1 {
		t.Fatalf("rebuilds=%d rebuiltEmpty=%d, want 1/1", m.Rebuilds, m.RebuiltEmpty)
	}
	if got := c.Shard(victim).Store().CASCounter(); got < preCAS+casRebuildGap {
		t.Fatalf("rebuilt CAS seed %d not past pre-crash mark %d + gap", got, preCAS)
	}

	// The survivor session re-attaches to the replacement transparently.
	key := []byte(perShard[victim][0])
	if _, _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rebuilt-empty shard get = %v, want ErrNotFound", err)
	}
	if err := s.Set(key, []byte("fresh"), 0, 0); err != nil {
		t.Fatalf("fresh write on rebuilt shard: %v", err)
	}
	if v, _, err := s.Get(key); err != nil || string(v) != "fresh" {
		t.Fatalf("fresh read on rebuilt shard = %q %v", v, err)
	}
	// No CAS ABA: every token minted after the rebuild is strictly past
	// every token minted before the crash.
	if _, _, cas, err := s.Gets(key); err != nil || cas <= preCAS {
		t.Fatalf("rebuilt shard minted cas %d (err %v), want > pre-crash %d", cas, err, preCAS)
	}

	// Survivor shards never lost a byte.
	for sh, keys := range perShard {
		if sh == victim {
			continue
		}
		for _, k := range keys {
			if v, _, err := s.Get([]byte(k)); err != nil || string(v) != "v0" {
				t.Fatalf("survivor shard %d lost %s: %q %v", sh, k, v, err)
			}
		}
	}
	st := c.ShardStatuses()[victim]
	if st.Breaker != "closed" || st.Rebuilds != 1 || st.BreakerTrips == 0 {
		t.Fatalf("victim status after rebuild = %+v", st)
	}
}

// The full ladder: a Dir-backed victim with a checkpoint reopens from its
// best image — pre-checkpoint data survives the unrepairable crash,
// post-checkpoint writes are lost (the documented delta), and the CAS
// space still moves strictly forward past the dead heap's mark, which
// includes the lost writes' mints.
func TestSupervisorRebuildsFromCheckpoint(t *testing.T) {
	defer faultpoint.DisarmAll()
	cfg := supervisorTestConfig()
	cfg.Dir = t.TempDir()
	c := newTestCluster(t, 2, cfg)
	s := newClusterSession(t, c)

	const victim = 0
	var prePost [2][]string // victim-owned keys, [0] pre-checkpoint, [1] post
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("pre%03d", i)
		if err := s.Set([]byte(key), []byte("v0"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if c.ShardFor([]byte(key)) == victim {
			prePost[0] = append(prePost[0], key)
		}
	}
	if err := c.Shard(victim).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("post%03d", i)
		if err := s.Set([]byte(key), []byte("v1"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if c.ShardFor([]byte(key)) == victim {
			prePost[1] = append(prePost[1], key)
		}
	}
	if len(prePost[0]) == 0 || len(prePost[1]) == 0 {
		t.Fatalf("victim owns %d pre / %d post keys; need both", len(prePost[0]), len(prePost[1]))
	}

	poisonShard(t, c, victim)
	preCAS := c.Shard(victim).Store().CASCounter()
	c.SuperviseOnce(time.Now())

	if st := c.State(victim); st != ShardHealthy {
		t.Fatalf("state after rebuild = %d, want healthy", st)
	}
	m := c.supervisorMetrics()
	if m.Rebuilds != 1 || m.RebuiltEmpty != 0 {
		t.Fatalf("rebuilds=%d rebuiltEmpty=%d, want a from-image rebuild", m.Rebuilds, m.RebuiltEmpty)
	}
	for _, k := range prePost[0] {
		if v, _, err := s.Get([]byte(k)); err != nil || string(v) != "v0" {
			t.Fatalf("pre-checkpoint key %s after rebuild = %q %v", k, v, err)
		}
	}
	for _, k := range prePost[1] {
		if _, _, err := s.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("post-checkpoint key %s after rebuild = %v, want lost", k, err)
		}
	}
	// The image's CAS counter predates the lost writes, but the rebuilt
	// shard's seed must not: tokens minted for the lost writes can never
	// be re-minted.
	if got := c.Shard(victim).Store().CASCounter(); got < preCAS+casRebuildGap {
		t.Fatalf("rebuilt CAS seed %d not past pre-crash mark %d", got, preCAS)
	}
	k := []byte(prePost[1][0])
	if err := s.Set(k, []byte("fresh"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, cas, err := s.Gets(k); err != nil || cas <= preCAS {
		t.Fatalf("post-rebuild mint %d (err %v), want > %d", cas, err, preCAS)
	}
}

// The breaker's full state machine, driven on the supervisor's injectable
// clock: consecutive crossing failures open it, the cooldown half-opens
// it, exactly one probe is admitted, a failed probe re-opens, a clean
// probe closes, and a poison verdict trips instantly.
func TestBreakerStateMachine(t *testing.T) {
	cfg := ClusterConfig{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond}
	c := newTestCluster(t, 1, cfg)
	h := c.shardHealth(0)
	// Attend the cluster up front: this test drives every clock transition
	// explicitly, so the unsupervised data-path fallback (which reads the
	// real clock) must stay out of the way.
	c.SuperviseOnce(time.Now())

	if err := c.shardAllow(0); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	c.shardReport(0, nil)
	c.shardReport(0, hodor.ErrRecoveryTimeout)
	if h.br.state.Load() != breakerClosed {
		t.Fatal("one failure below threshold opened the breaker")
	}
	c.shardReport(0, hodor.ErrRecoveryTimeout)
	if h.br.state.Load() != breakerOpen {
		t.Fatal("threshold run of failures did not open the breaker")
	}
	err := c.shardAllow(0)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("open breaker allow = %v, want ErrShardDown", err)
	}
	if f, ok := ShardDownFrame(err); !ok || f != "shard 0 recovering" {
		t.Fatalf("frame = %q %v", f, ok)
	}
	// Retryable, not session-fatal: pools must not churn on it.
	if sessionFatal(err) {
		t.Fatal("breaker fast-fail classified session-fatal")
	}
	if !hodor.Retryable(errors.Unwrap(err)) {
		t.Fatal("recovering fast-fail must unwrap to a retryable gate error")
	}

	// Cooldown runs on the supervisor's clock: first pass stamps, a pass
	// inside the window holds, a pass past it half-opens.
	t0 := time.Now()
	c.SuperviseOnce(t0)
	if h.br.state.Load() != breakerOpen {
		t.Fatal("stamping pass changed state")
	}
	c.SuperviseOnce(t0.Add(49 * time.Millisecond))
	if h.br.state.Load() != breakerOpen {
		t.Fatal("breaker half-opened inside the cooldown")
	}
	c.SuperviseOnce(t0.Add(51 * time.Millisecond))
	if h.br.state.Load() != breakerHalfOpen {
		t.Fatal("breaker did not half-open past the cooldown")
	}

	// Exactly one probe; the loser fails fast.
	if err := c.shardAllow(0); err != nil {
		t.Fatalf("probe slot refused: %v", err)
	}
	if err := c.shardAllow(0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("second caller during probe = %v, want fast-fail", err)
	}
	// Failed probe: straight back to open, cooldown restarted.
	c.shardReport(0, hodor.ErrRecoveryTimeout)
	if h.br.state.Load() != breakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}
	c.SuperviseOnce(t0.Add(100 * time.Millisecond)) // restamp
	c.SuperviseOnce(t0.Add(200 * time.Millisecond))
	if h.br.state.Load() != breakerHalfOpen {
		t.Fatal("breaker did not half-open after the failed probe's cooldown")
	}
	if err := c.shardAllow(0); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	c.shardReport(0, ErrNotFound) // a per-key verdict is a healthy crossing
	if h.br.state.Load() != breakerClosed {
		t.Fatal("clean probe did not close the breaker")
	}

	// Poison trips instantly, threshold notwithstanding.
	c.shardReport(0, hodor.ErrPoisoned)
	if h.br.state.Load() != breakerOpen {
		t.Fatal("poison verdict did not trip the breaker")
	}
	if h.br.trips.Load() < 2 {
		t.Fatalf("trips = %d, want every open transition counted", h.br.trips.Load())
	}
}

// Proxy admission is peek-only: it never consumes the half-open probe
// slot. The proxy's direct contexts bypass the gate and report no
// outcome, so a probe taken there would strand the breaker in probe
// forever — half-open must survive any amount of proxy traffic until a
// reporting caller takes the probe.
func TestProxyAllowDoesNotConsumeProbe(t *testing.T) {
	cfg := ClusterConfig{BreakerThreshold: 1, BreakerCooldown: 50 * time.Millisecond}
	c := newTestCluster(t, 2, cfg)
	h := c.shardHealth(0)
	t0 := time.Now()
	c.SuperviseOnce(t0) // attended: the fallback clock stays out

	c.shardReport(0, hodor.ErrRecoveryTimeout)
	if h.br.state.Load() != breakerOpen {
		t.Fatal("threshold-1 failure did not open the breaker")
	}
	if err := c.proxyAllow(0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("proxy admission while open = %v, want fast-fail", err)
	}
	c.SuperviseOnce(t0.Add(10 * time.Millisecond))  // stamp the cooldown
	c.SuperviseOnce(t0.Add(100 * time.Millisecond)) // past it: half-open
	if h.br.state.Load() != breakerHalfOpen {
		t.Fatal("breaker did not half-open")
	}

	// Any amount of proxy traffic passes through half-open without
	// taking the probe slot.
	for i := 0; i < 5; i++ {
		if err := c.proxyAllow(0); err != nil {
			t.Fatalf("proxy admission during half-open: %v", err)
		}
	}
	if h.br.state.Load() != breakerHalfOpen {
		t.Fatal("proxyAllow consumed the probe slot")
	}

	// The probe belongs to a reporting caller; while it is in flight the
	// proxy fails fast (one probe total), and a clean report closes.
	if err := c.shardAllow(0); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	if h.br.state.Load() != breakerProbe {
		t.Fatal("reporting caller did not take the probe")
	}
	if err := c.proxyAllow(0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("proxy admission during probe = %v, want fast-fail", err)
	}
	c.shardReport(0, nil)
	if h.br.state.Load() != breakerClosed {
		t.Fatal("clean probe did not close the breaker")
	}
	if err := c.proxyAllow(0); err != nil {
		t.Fatalf("proxy admission after close: %v", err)
	}
}

// A probe whose caller never reports (died mid-crossing) cannot wedge
// the breaker: the supervisor times the stale probe back to open and the
// next cooldown hands the slot to a fresh caller.
func TestBreakerStaleProbeTimesOut(t *testing.T) {
	cfg := ClusterConfig{BreakerThreshold: 1, BreakerCooldown: 50 * time.Millisecond}
	c := newTestCluster(t, 1, cfg)
	h := c.shardHealth(0)
	t0 := time.Now()
	c.SuperviseOnce(t0)

	c.shardReport(0, hodor.ErrRecoveryTimeout)
	c.SuperviseOnce(t0.Add(10 * time.Millisecond))
	c.SuperviseOnce(t0.Add(100 * time.Millisecond))
	if err := c.shardAllow(0); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	if h.br.state.Load() != breakerProbe {
		t.Fatal("probe not taken")
	}

	// The probe never reports. Supervisor passes: stamp, hold inside the
	// window, then time the stale probe back to open.
	c.SuperviseOnce(t0.Add(110 * time.Millisecond))
	if h.br.state.Load() != breakerProbe {
		t.Fatal("stamping pass changed the probe state")
	}
	c.SuperviseOnce(t0.Add(120 * time.Millisecond))
	if h.br.state.Load() != breakerProbe {
		t.Fatal("probe timed out inside the cooldown window")
	}
	c.SuperviseOnce(t0.Add(200 * time.Millisecond))
	if h.br.state.Load() != breakerOpen {
		t.Fatal("stale probe did not revert to open")
	}

	// The next cooldown re-arms a fresh probe, which closes cleanly.
	c.SuperviseOnce(t0.Add(210 * time.Millisecond))
	c.SuperviseOnce(t0.Add(300 * time.Millisecond))
	if err := c.shardAllow(0); err != nil {
		t.Fatalf("fresh probe refused: %v", err)
	}
	c.shardReport(0, nil)
	if h.br.state.Load() != breakerClosed {
		t.Fatal("fresh probe did not close the breaker")
	}
}

// An embedder that never starts the supervisor still recovers: when no
// supervisor has ever attended the cluster, the breaker refusal path
// runs the clock transitions inline, so a tripped breaker half-opens
// after the cooldown instead of fast-failing forever.
func TestUnsupervisedBreakerRecovers(t *testing.T) {
	cfg := ClusterConfig{BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond}
	c := newTestCluster(t, 1, cfg)
	h := c.shardHealth(0)

	c.shardReport(0, hodor.ErrRecoveryTimeout)
	if h.br.state.Load() != breakerOpen {
		t.Fatal("failure did not open the breaker")
	}
	// The first refusal stamps the cooldown on the data path's clock;
	// refusals past the cooldown half-open it and admit a probe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.shardAllow(0)
		if err == nil {
			break // the fallback half-opened; this caller is the probe
		}
		if !errors.Is(err, ErrShardDown) {
			t.Fatalf("refusal = %v, want ErrShardDown", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never half-opened without a supervisor")
		}
		time.Sleep(time.Millisecond)
	}
	c.shardReport(0, nil)
	if h.br.state.Load() != breakerClosed {
		t.Fatal("clean probe did not close the breaker")
	}
	if err := c.shardAllow(0); err != nil {
		t.Fatalf("allow after unsupervised recovery: %v", err)
	}
	c.shardReport(0, nil)
}

// A rebuild request that queued behind a completed rebuild must not
// re-run the ladder on the healthy replacement — that would detach it
// and silently discard every write accepted since the first rebuild.
// rebuildShard re-verifies poison under resizeMu and returns early.
func TestRebuildShardSkipsHealthyReplacement(t *testing.T) {
	defer faultpoint.DisarmAll()
	c := newTestCluster(t, 2, supervisorTestConfig())
	s := newClusterSession(t, c)

	poisonShard(t, c, 0)
	c.SuperviseOnce(time.Now())
	rebuilt := c.Shard(0)
	key := keyOwnedBy(t, c, 0, "post")
	if err := s.Set(key, []byte("survives"), 0, 0); err != nil {
		t.Fatal(err)
	}

	// A manual RebuildShard whose Poisoned() precheck passed before the
	// supervisor won the race reaches the ladder only now; it must see
	// the healthy replacement and stand down.
	c.shardHealth(0).br.trip(ShardRebuilding)
	if err := c.rebuildShard(0, time.Now()); err != nil {
		t.Fatalf("queued rebuild on healthy shard: %v", err)
	}
	if c.Shard(0) != rebuilt {
		t.Fatal("queued rebuild detached the healthy replacement")
	}
	if m := c.supervisorMetrics(); m.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1 (no second ladder run)", m.Rebuilds)
	}
	if v, _, err := s.Get(key); err != nil || string(v) != "survives" {
		t.Fatalf("write accepted after the first rebuild was lost: %q %v", v, err)
	}
	if st := c.ShardStatuses()[0]; st.Breaker != "closed" {
		t.Fatalf("breaker after the stand-down = %s, want closed", st.Breaker)
	}
}

// While a rebuild is in flight every caller fails fast with the
// "rebuilding" frame — no waiting on the routing barrier.
func TestShardAllowFastFailsWhileRebuilding(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{})
	h := c.shardHealth(1)
	h.rebuilding.Store(true)
	defer h.rebuilding.Store(false)

	if st := c.State(1); st != ShardRebuilding {
		t.Fatalf("state = %d, want rebuilding", st)
	}
	err := c.shardAllow(1)
	if !errors.Is(err, ErrShardDown) || !errors.Is(err, hodor.ErrPoisoned) {
		t.Fatalf("allow during rebuild = %v", err)
	}
	if f, _ := ShardDownFrame(err); f != "shard 1 rebuilding" {
		t.Fatalf("frame = %q", f)
	}
	if h.br.fastFails.Load() == 0 {
		t.Fatal("fast-fail not counted")
	}
	h.rebuilding.Store(false)
	if err := c.shardAllow(1); err != nil {
		t.Fatalf("allow after rebuild flag cleared: %v", err)
	}
}

// OpenCluster degrades per shard: when every image candidate of one
// shard is corrupt, the cluster still opens with that shard rebuilt
// empty and flagged, while the other shards reload intact. Only a
// directory where no shard opens is refused outright.
func TestOpenClusterDegraded(t *testing.T) {
	dir := t.TempDir()
	cfg := ClusterConfig{Shards: 3, Dir: dir,
		Store: Config{HeapBytes: 16 << 20, HashPower: 10, NumItemLocks: 64}}
	c, err := CreateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := c.NewClientProcess(1000)
	s, _ := cc.NewSession()
	perShard := make([][]string, 3)
	for i := 0; i < 150; i++ {
		key := fmt.Sprintf("deg%03d", i)
		if err := s.Set([]byte(key), []byte("v0"), 0, 0); err != nil {
			t.Fatal(err)
		}
		perShard[c.ShardFor([]byte(key))] = append(perShard[c.ShardFor([]byte(key))], key)
	}
	s.Close()
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	const victim = 1
	corrupt := func(shard int) {
		t.Helper()
		matches, err := filepath.Glob(filepath.Join(dir, ShardImageName(shard)) + "*")
		if err != nil || len(matches) == 0 {
			t.Fatalf("no image candidates for shard %d (%v)", shard, err)
		}
		for _, m := range matches {
			if err := os.WriteFile(m, []byte("not a heap image"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	corrupt(victim)

	c2, err := OpenCluster(cfg)
	if err != nil {
		t.Fatalf("degraded open refused: %v", err)
	}
	sts := c2.ShardStatuses()
	for i, st := range sts {
		if want := i == victim; st.RebuiltAtOpen != want {
			t.Fatalf("shard %d rebuiltAtOpen = %v, want %v", i, st.RebuiltAtOpen, want)
		}
		if st.State != ShardHealthy {
			t.Fatalf("shard %d state = %d after degraded open", i, st.State)
		}
	}
	if m := c2.Metrics(); m.Supervisor.RebuiltAtOpen != 1 || m.Supervisor.RebuiltEmpty != 1 {
		t.Fatalf("supervisor metrics after degraded open = %+v", m.Supervisor)
	}
	if items := c2.Shard(victim).Stats().CurrItems; items != 0 {
		t.Fatalf("degraded shard reloaded %d items from corrupt images", items)
	}
	s2 := newClusterSession(t, c2)
	for _, k := range perShard[victim] {
		if _, _, err := s2.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("degraded shard key %s = %v, want lost", k, err)
		}
	}
	for sh, keys := range perShard {
		if sh == victim {
			continue
		}
		for _, k := range keys {
			if v, _, err := s2.Get([]byte(k)); err != nil || string(v) != "v0" {
				t.Fatalf("intact shard %d key %s = %q %v", sh, k, v, err)
			}
		}
	}
	if err := s2.Set([]byte(perShard[victim][0]), []byte("fresh"), 0, 0); err != nil {
		t.Fatalf("write to degraded shard: %v", err)
	}
	// The rebuilt shard checkpoints into the slot scheme as usual.
	if err := c2.Shard(victim).Checkpoint(); err != nil {
		t.Fatalf("checkpoint on degraded shard: %v", err)
	}
	if err := c2.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Every shard corrupt = the wrong directory, not a degraded cluster.
	for i := 0; i < 3; i++ {
		corrupt(i)
	}
	if _, err := OpenCluster(cfg); err == nil {
		t.Fatal("open with every shard corrupt should fail")
	}
}

// The proxy tier never masks a down shard as a miss: ASCII clients see a
// SERVER_ERROR frame naming the shard and its lifecycle state, multigets
// spanning a down shard terminate with the frame instead of END, and
// traffic resumes the instant the shard is back.
func TestProxyReportsShardDownFrames(t *testing.T) {
	c := newTestCluster(t, 2, ClusterConfig{})
	srv, err := c.ServeRemote("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	k0 := keyOwnedBy(t, c, 0, "pxa")
	k1 := keyOwnedBy(t, c, 1, "pxb")

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(format string, args ...any) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, format, args...); err != nil {
			t.Fatal(err)
		}
	}
	line := func() string {
		t.Helper()
		l, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(l, "\r\n")
	}

	for _, k := range [][]byte{k0, k1} {
		send("set %s 0 0 2\r\nok\r\n", k)
		if got := line(); got != "STORED" {
			t.Fatalf("seed set = %q", got)
		}
	}

	c.shardHealth(0).rebuilding.Store(true)

	send("get %s\r\n", k0)
	if got := line(); got != "SERVER_ERROR shard 0 rebuilding" {
		t.Fatalf("get on down shard = %q, want the shard-down frame (never a bare END)", got)
	}
	send("set %s 0 0 2\r\nxx\r\n", k0)
	if got := line(); got != "SERVER_ERROR shard 0 rebuilding" {
		t.Fatalf("set on down shard = %q", got)
	}
	// Multiget spanning a healthy and a down shard: the healthy value is
	// delivered, then the frame terminates the reply instead of END.
	send("get %s %s\r\n", k1, k0)
	var lines []string
	for {
		l := line()
		lines = append(lines, l)
		if l == "END" || strings.HasPrefix(l, "SERVER_ERROR") {
			break
		}
	}
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "VALUE "+string(k1)) ||
		lines[2] != "SERVER_ERROR shard 0 rebuilding" {
		t.Fatalf("multiget over down shard = %q", lines)
	}

	c.shardHealth(0).rebuilding.Store(false)

	// Back up: the fast-fail path never tripped the breaker open, so the
	// first request after the flag clears is served.
	send("get %s\r\n", k0)
	if got := line(); !strings.HasPrefix(got, "VALUE ") {
		t.Fatalf("get after recovery = %q", got)
	}
	line() // data
	line() // END

	// The operator view counted the refusals.
	if st := c.ShardStatuses()[0]; st.FastFails == 0 {
		t.Fatalf("fast-fails not counted: %+v", st)
	}
}

// Checkpointing degrades under disk faults: every injected failure step
// leaves the store healthy on its prior checkpoint generation, counts the
// failure, surfaces the error through the metrics plane, and the next
// clean attempt advances the generation.
func TestDiskFaultCheckpointDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")
	b, err := CreateStore(Config{HeapBytes: 8 << 20, HashPower: 8, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	cp, err := b.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	steps := []shm.FaultStep{shm.FaultCreate, shm.FaultWrite, shm.FaultSync, shm.FaultClose, shm.FaultRename}
	for _, step := range steps {
		restore := shm.SetImageFS(&shm.FaultFS{Step: step, Err: fmt.Errorf("injected EIO at %v", step)})
		err := b.Checkpoint()
		restore()
		if err == nil {
			t.Fatalf("checkpoint with %v fault should fail", step)
		}
		if gen := b.CheckpointGeneration(); gen != 1 {
			t.Fatalf("%v fault moved the durable generation to %d", step, gen)
		}
		// The store itself is untouched: the failing disk never poisons a
		// healthy heap.
		if v, _, err := sess.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("store unhealthy after %v fault: %q %v", step, v, err)
		}
		cands := shm.ImageCandidates(path)
		if len(cands) == 0 || cands[0].Generation != 1 || cands[0].Err != nil {
			t.Fatalf("best candidate after %v fault = %+v, want intact gen 1", step, cands)
		}
	}

	m := b.Metrics()
	if m.Checkpoint.Failures != len(steps) {
		t.Fatalf("failures = %d, want %d", m.Checkpoint.Failures, len(steps))
	}
	if m.Checkpoint.LastError == "" || !strings.Contains(m.Checkpoint.LastError, "rename") {
		t.Fatalf("last error not surfaced: %q", m.Checkpoint.LastError)
	}
	if m.Checkpoint.LastFailureAt.IsZero() {
		t.Fatal("last failure time not stamped")
	}
	if v := m.Vars()["checkpoint_last_error"]; v == "" {
		t.Fatal("checkpoint_last_error missing from vars")
	}
	found := false
	for _, smp := range m.Samples() {
		if smp.Name == "plibmc_checkpoint_failures_total" && smp.Value == float64(len(steps)) {
			found = true
		}
	}
	if !found {
		t.Fatal("plibmc_checkpoint_failures_total sample missing or wrong")
	}

	// The disk recovers: the next checkpoint advances the generation.
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if gen := b.CheckpointGeneration(); gen != 2 {
		t.Fatalf("generation after recovery = %d, want 2", gen)
	}
}

// RebuildShard is the /admin escape hatch: it refuses a healthy shard and
// runs the ladder on a poisoned one.
func TestRebuildShardAdmin(t *testing.T) {
	defer faultpoint.DisarmAll()
	c := newTestCluster(t, 2, supervisorTestConfig())
	if err := c.RebuildShard(0); err == nil {
		t.Fatal("rebuild of a healthy shard should be refused")
	}
	if err := c.RebuildShard(9); err == nil {
		t.Fatal("rebuild of a nonexistent shard should be refused")
	}
	s := newClusterSession(t, c)
	if err := s.Set(keyOwnedBy(t, c, 0, "adm"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	poisonShard(t, c, 0)
	if err := c.RebuildShard(0); err != nil {
		t.Fatalf("manual rebuild: %v", err)
	}
	if st := c.State(0); st != ShardHealthy {
		t.Fatalf("state after manual rebuild = %d", st)
	}
}
