package memcached

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/faultpoint"
)

func TestCheckpointWhileServing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.img")
	b, err := CreateStore(Config{HeapBytes: 16 << 20, Path: path, HashPower: 10, NumItemLocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	cp, _ := b.NewClientProcess(1000)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var lastWritten [4]atomic.Int64
	for w := 0; w < 4; w++ {
		s, err := cp.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, s *Session) {
			defer wg.Done()
			defer s.Close()
			for i := 0; !stop.Load(); i++ {
				k := []byte(fmt.Sprintf("w%d-%06d", id, i))
				if err := s.Set(k, []byte("data"), 0, 0); err != nil {
					t.Error(err)
					return
				}
				lastWritten[id].Store(int64(i))
			}
		}(w, s)
	}

	// Take several live checkpoints under load.
	for i := 0; i < 5; i++ {
		time.Sleep(5 * time.Millisecond)
		if err := b.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	var atCkpt [4]int64
	for i := range atCkpt {
		atCkpt[i] = lastWritten[i].Load()
	}
	stop.Store(true)
	wg.Wait()

	// Recover from the last checkpoint: everything written before it must
	// be present and intact (later writes may or may not be).
	b2, err := OpenStore(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Shutdown()
	cp2, _ := b2.NewClientProcess(1000)
	s2, _ := cp2.NewSession()
	defer s2.Close()
	for id := 0; id < 4; id++ {
		for i := int64(0); i < atCkpt[id]-1; i++ {
			k := []byte(fmt.Sprintf("w%d-%06d", id, i))
			if v, _, err := s2.Get(k); err != nil || string(v) != "data" {
				t.Fatalf("writer %d record %d lost after recovery: %q, %v", id, i, v, err)
			}
		}
	}
	// The recovered store accepts new work.
	if err := s2.Set([]byte("post-recovery"), []byte("ok"), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRequiresPath(t *testing.T) {
	b := newTestStore(t)
	if err := b.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a backing file should fail")
	}
}

func TestPeriodicCheckpointing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "periodic.img")
	b, err := CreateStore(Config{HeapBytes: 8 << 20, Path: path, HashPower: 9, NumItemLocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := b.NewClientProcess(1000)
	s, _ := cp.NewSession()
	if err := s.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	errs := b.StartCheckpointing(5 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	b.StopCheckpointing()
	b.StopCheckpointing() // idempotent
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s.Close()
	b.StopMaintenance()

	// A "crash" now (no Shutdown flush): the periodic checkpoint already
	// persisted the write.
	b2, err := OpenStore(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Shutdown()
	cp2, _ := b2.NewClientProcess(1000)
	s2, _ := cp2.NewSession()
	defer s2.Close()
	if v, _, err := s2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("checkpointed write lost: %q, %v", v, err)
	}
}

// TestCheckpointRefusedDuringRepair drives a checkpoint while a structural
// repair is in flight and asserts it refuses with ErrRecovering instead of
// persisting half-rebuilt chains (or deadlocking against the repair
// coordinator, which spins on the same mutex). The repair is pinned
// in flight by holding the repair mutex from the test: the coordinator
// parks in its TryLock spin with the library in the Recovering state.
func TestCheckpointRefusedDuringRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repair-ckpt.img")
	b, err := CreateStore(Config{HeapBytes: 16 << 20, Path: path, HashPower: 8, NumItemLocks: 16, CallTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Shutdown()
	doomed := newTestSession(t, b)
	s := newTestSession(t, b)
	if err := s.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}

	// Pin the repair coordinator out of the repair mutex, then crash a call
	// inside the library. The library enters Recovering and stays there
	// until the mutex frees.
	b.repairMu.Lock()
	lockHeld := make(chan struct{})
	release := make(chan struct{})
	if err := faultpoint.Arm("ops.store.locked", func() {
		close(lockHeld)
		<-release
		panic("injected crash: ops.store.locked")
	}); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.DisarmAll()
	crashDone := make(chan error, 1)
	go func() { crashDone <- doomed.Set([]byte("doomed"), []byte("v"), 0, 0) }()
	<-lockHeld
	close(release)
	if err := <-crashDone; err == nil {
		t.Fatal("crashed call returned nil error")
	}
	faultpoint.DisarmAll()
	deadline := time.Now().Add(5 * time.Second)
	for !b.lib.Recovering() {
		if time.Now().After(deadline) {
			b.repairMu.Unlock()
			t.Fatal("library never entered the Recovering state")
		}
		time.Sleep(time.Millisecond)
	}

	// The checkpoint must refuse promptly — before touching the repair
	// mutex (which the test holds on the coordinator's behalf).
	if err := b.Checkpoint(); err != ErrRecovering {
		b.repairMu.Unlock()
		t.Fatalf("checkpoint during repair = %v, want ErrRecovering", err)
	}
	if b.ckptGen != 0 {
		b.repairMu.Unlock()
		t.Fatalf("refused checkpoint advanced the generation to %d", b.ckptGen)
	}

	// Release the repair; it must complete and restore service.
	b.repairMu.Unlock()
	for b.lib.Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("library did not leave the Recovering state")
		}
		time.Sleep(time.Millisecond)
	}
	if b.lib.Poisoned() {
		t.Fatal("library poisoned; repair should have succeeded")
	}
	if err := b.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after repair: %v", err)
	}
	if m := b.Metrics(); m.Checkpoint.Checkpoints != 1 || m.Checkpoint.LastGeneration != 1 {
		t.Fatalf("checkpoint metrics = %+v", m.Checkpoint)
	}

	// The image taken after repair round-trips.
	b2, err := OpenStore(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Shutdown()
	if b2.CheckpointGeneration() != 1 {
		t.Fatalf("reopened generation = %d, want 1", b2.CheckpointGeneration())
	}
	s2 := newTestSession(t, b2)
	if v, _, err := s2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("post-repair checkpoint lost data: %q, %v", v, err)
	}
}

func TestSessionMGet(t *testing.T) {
	b := newTestStore(t)
	s := newTestSession(t, b)
	for i := 0; i < 6; i += 2 {
		if err := s.Set([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.MGet([][]byte{[]byte("k0"), []byte("k1"), []byte("k2"), []byte("k4")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 || !res[0].Found || res[1].Found || !res[2].Found || !res[3].Found {
		t.Fatalf("mget = %+v", res)
	}
	if string(res[0].Value) != "v0" || string(res[3].Value) != "v4" {
		t.Fatalf("mget values = %q %q", res[0].Value, res[3].Value)
	}
	// One trampoline crossing for the whole batch: wrpkru twice total.
	cp, _ := b.NewClientProcess(1500)
	s2, _ := cp.NewSession()
	defer s2.Close()
	before := cp.Process().WRPKRUCount()
	if _, err := s2.MGet([][]byte{[]byte("k0"), []byte("k2"), []byte("k4")}); err != nil {
		t.Fatal(err)
	}
	if n := cp.Process().WRPKRUCount() - before; n != 2 {
		t.Fatalf("batched mget executed wrpkru %d times, want 2", n)
	}
	// Errors from a killed process propagate.
	cp.Kill()
	if _, err := s2.MGet([][]byte{[]byte("k0")}); err == nil {
		t.Fatal("mget on killed process should fail")
	}
	var ek error = err
	_ = errors.Is(ek, ek)
}
