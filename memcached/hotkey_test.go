package memcached

import (
	"fmt"
	"testing"
)

// The decay pass fires when `seen` reaches the window, *before* the
// triggering observation is recorded — so that observation lands wholly
// inside the new window: its count survives the halving and it ticks
// the new window's `seen` budget. The pre-fix ordering (increment, then
// decay) halved the boundary read away and drifted the boundary by one
// observation per window.
func TestHotTrackerWindowBoundaryOrdering(t *testing.T) {
	h := newHotTracker(100, 4) // threshold high: pure counting test

	for i := 0; i < 4; i++ {
		h.observe([]byte("a"))
	}
	// 5th observation crosses the boundary: decay halves a's 4 → 2, then
	// the read itself records, leaving 3. The buggy order recorded first
	// and halved (4+1)/2 → 2, losing the boundary read.
	h.observe([]byte("a"))
	keys, _ := h.snapshot()
	if len(keys) != 1 || keys[0].Key != "a" || keys[0].Count != 3 {
		t.Fatalf("post-boundary count = %+v, want a:3", keys)
	}
	if h.seen != 1 {
		t.Fatalf("seen = %d after the boundary read, want 1 (the read belongs to the new window)", h.seen)
	}

	// Steady state: every further window is exactly `window` observations
	// wide — no drift.
	for w := 0; w < 3; w++ {
		for i := 0; i < 3; i++ {
			h.observe([]byte("a"))
		}
		if h.seen != 4 {
			t.Fatalf("window %d: seen = %d before boundary, want 4", w, h.seen)
		}
		h.observe([]byte("a"))
		if h.seen != 1 {
			t.Fatalf("window %d: seen = %d after boundary, want 1", w, h.seen)
		}
	}
}

// Decay demotes a key that falls below the threshold and queues it for
// replica invalidation; takeDemoted drains the queue exactly once.
func TestHotTrackerDecayDemotes(t *testing.T) {
	h := newHotTracker(4, 8)
	for i := 0; i < 4; i++ {
		h.observe([]byte("star"))
	}
	if !h.isHot([]byte("star")) {
		t.Fatal("star not hot after threshold reads")
	}
	// Pad to the boundary with other keys; the decay halves star to 2,
	// below threshold.
	for i := 0; i < 5; i++ {
		h.observe([]byte(fmt.Sprintf("filler-%d", i)))
	}
	if h.isHot([]byte("star")) {
		t.Fatal("star still hot after decaying below threshold")
	}
	d := h.takeDemoted()
	if len(d) != 1 || d[0] != "star" {
		t.Fatalf("demoted = %v, want [star]", d)
	}
	if d := h.takeDemoted(); d != nil {
		t.Fatalf("second drain = %v, want nil", d)
	}
}

// A key that enters a full sketch inherits the evicted minimum as an
// error floor: the inherited count alone must never mint an instantly-
// hot key. Promotion requires count − floor ≥ threshold — the sketch's
// lower bound on reads the key actually received. The pre-fix check
// compared the raw count against the threshold, so any newcomer landing
// on a sketch whose minimum was already past the threshold was declared
// hot on its first read ever.
func TestHotTrackerNoInstantHotFromInheritedFloor(t *testing.T) {
	const threshold = 4
	h := newHotTracker(threshold, 1<<20) // window huge: no decay in this test

	// Fill the sketch: every slot's count ends at 5 ≥ threshold.
	for i := 0; i < hotTrackerK; i++ {
		k := []byte(fmt.Sprintf("filler-%03d", i))
		for r := 0; r < 5; r++ {
			h.observe(k)
		}
	}
	// A newcomer evicts a minimum entry and inherits n=5, floor=5.
	newcomer := []byte("newcomer")
	for r := 1; r < threshold; r++ {
		if h.observe(newcomer) {
			t.Fatalf("newcomer hot after %d genuine reads (inherited floor leaked into promotion)", r)
		}
		if h.isHot(newcomer) {
			t.Fatalf("isHot(newcomer) after %d genuine reads", r)
		}
	}
	// The threshold-th genuine read: n−floor reaches the threshold.
	if !h.observe(newcomer) {
		t.Fatal("newcomer not hot after threshold genuine reads")
	}
}

// Cluster-level demotion regression: a key that was hot, got replicated,
// and then decayed cold must have its ring-successor replica deleted by
// the demotion drain. Before the fix the replica survived demotion —
// writes stop invalidating it the moment the key turns cold — so when
// the key later re-heated, reads were served the stale pre-demotion
// value from the forgotten replica.
func TestClusterHotKeyDemotionDropsReplica(t *testing.T) {
	const threshold, window = 4, 32
	c := newTestCluster(t, 4, ClusterConfig{HotKeyThreshold: threshold, HotKeyWindow: window})
	s := newClusterSession(t, c)

	hot := []byte("fallen-star")
	if err := s.Set(hot, []byte("v1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	primary := c.ShardFor(hot)
	replica := c.replicaOf(primary)

	// Same-shard filler keys drive the primary's tracker through decay
	// windows without touching the hot key.
	var fillers [][]byte
	for i := 0; len(fillers) < 8; i++ {
		k := []byte(fmt.Sprintf("ember-%04d", i))
		if c.ShardFor(k) != primary {
			continue
		}
		if err := s.Set(k, []byte("x"), 0, 0); err != nil {
			t.Fatal(err)
		}
		fillers = append(fillers, k)
	}

	// Heat the key until the replica physically holds v1.
	for i := 0; i < 4*threshold; i++ {
		if _, _, err := s.Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	if v, _, err := s.Session(replica).Get(hot); err != nil || string(v) != "v1" {
		t.Fatalf("replica never materialized: %q %v", v, err)
	}

	// Let it fall: several windows of filler-only reads halve its count
	// below the threshold; the drain on those same reads must delete the
	// replica.
	for w := 0; w < 8; w++ {
		for i := 0; i < window; i++ {
			if _, _, err := s.Get(fillers[i%len(fillers)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := s.Session(replica).Get(hot); err == nil {
		t.Fatal("stale replica survived demotion")
	}

	// The full pre-fix failure: write while cold (no invalidation runs),
	// re-heat, and confirm no reader is ever served the old value.
	if err := s.Set(hot, []byte("v2"), 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8*threshold; i++ {
		v, _, err := s.Get(hot)
		if err != nil || string(v) != "v2" {
			t.Fatalf("read #%d after re-heating = %q %v, want v2 (stale replica resurrected)", i, v, err)
		}
	}
}
