package plibmc

// Chaos test: the paper's core safety claim is that a store shared by
// independently failing processes survives any pattern of client crashes.
// This test runs waves of client processes against one store, killing a
// random subset mid-flight each wave, then verifies at the end of every
// wave that (a) the library never poisoned, (b) surviving processes can
// run the full operation mix, (c) the allocator's fsck passes, and (d)
// statistics remain self-consistent.

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/internal/proc"
	"plibmc/memcached"
)

// chaosSeed makes failures reproducible: every run with the same seed
// kills the same processes at the same points in the schedule. The
// default is fixed (never time-derived) so plain `go test` is
// deterministic; sweep seeds with e.g. `go test -run Chaos -chaos.seed 7`.
var chaosSeed = flag.Int64("chaos.seed", 42, "PRNG seed for the chaos kill schedule")

func TestChaosKillsNeverCorrupt(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 64 << 20, HashPower: 12, NumItemLocks: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.StartMaintenance(5 * time.Millisecond)
	defer book.StopMaintenance()

	rng := rand.New(rand.NewSource(*chaosSeed))
	waves := 5
	if testing.Short() {
		waves = 2 // the `make check` variant: same invariants, less soak
	}
	const procsPerWave = 4
	const threadsPerProc = 2
	t.Logf("chaos seed %d, %d waves", *chaosSeed, waves)

	for wave := 0; wave < waves; wave++ {
		var procs []*memcached.ClientProcess
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for p := 0; p < procsPerWave; p++ {
			cp, err := book.NewClientProcess(1000 + wave*10 + p)
			if err != nil {
				t.Fatal(err)
			}
			procs = append(procs, cp)
			for th := 0; th < threadsPerProc; th++ {
				s, err := cp.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(id int, s *memcached.Session) {
					defer wg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := []byte(fmt.Sprintf("w%d-k%d", wave, (id*37+i)%500))
						var err error
						switch i % 5 {
						case 0, 1:
							err = s.Set(k, []byte(fmt.Sprintf("v-%d-%d", id, i)), 0, 0)
						case 2:
							_, _, err = s.Get(k)
							if errors.Is(err, memcached.ErrNotFound) {
								err = nil
							}
						case 3:
							err = s.Delete(k)
							if errors.Is(err, memcached.ErrNotFound) {
								err = nil
							}
						case 4:
							_, err = s.Increment([]byte(fmt.Sprintf("ctr-%d", id%3)), 1)
							if errors.Is(err, memcached.ErrNotFound) {
								err = s.Add([]byte(fmt.Sprintf("ctr-%d", id%3)), []byte("0"), 0, 0)
								if errors.Is(err, memcached.ErrExists) {
									err = nil
								}
							}
						}
						if err != nil {
							var killed *proc.ErrKilled
							if errors.As(err, &killed) {
								return // our process died; expected
							}
							t.Errorf("wave %d worker %d: %v", wave, id, err)
							return
						}
						i++
					}
				}(p*threadsPerProc+th, s)
			}
		}

		// Let the wave run, then kill a random subset mid-flight.
		time.Sleep(3 * time.Millisecond)
		nKill := 1 + rng.Intn(procsPerWave-1)
		for _, idx := range rng.Perm(procsPerWave)[:nKill] {
			procs[idx].Kill()
		}
		time.Sleep(3 * time.Millisecond)
		close(stop)
		wg.Wait()

		// Invariants after the carnage.
		if book.Library().Poisoned() {
			t.Fatalf("wave %d: library poisoned by client kills", wave)
		}
		if _, err := book.Allocator().Check(); err != nil {
			t.Fatalf("wave %d: heap fsck failed: %v", wave, err)
		}
		verifier, err := book.NewClientProcess(9000 + wave)
		if err != nil {
			t.Fatal(err)
		}
		vs, err := verifier.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		probe := []byte(fmt.Sprintf("probe-%d", wave))
		if err := vs.Set(probe, []byte("alive"), 0, 0); err != nil {
			t.Fatalf("wave %d: store not writable after kills: %v", wave, err)
		}
		if v, _, err := vs.Get(probe); err != nil || string(v) != "alive" {
			t.Fatalf("wave %d: store not readable after kills: %q %v", wave, v, err)
		}
		// Every surviving key must round-trip with internally consistent
		// contents (the value encodes its writer).
		checked := 0
		for i := 0; i < 500; i++ {
			k := []byte(fmt.Sprintf("w%d-k%d", wave, i))
			v, _, err := vs.Get(k)
			if errors.Is(err, memcached.ErrNotFound) {
				continue
			}
			if err != nil {
				t.Fatalf("wave %d key %s: %v", wave, k, err)
			}
			if len(v) < 2 || v[0] != 'v' {
				t.Fatalf("wave %d key %s: torn value %q", wave, k, v)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("wave %d: no keys survived at all", wave)
		}
		vs.Close()
	}

	// The gate must be fully drained: a checkpoint-style quiesce succeeds
	// promptly (all in-flight ops from killed processes completed).
	done := make(chan struct{})
	go func() {
		book.Store().Quiesce()
		book.Store().Unquiesce()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gate never drained after chaos: an operation leaked")
	}
	st := book.Stats()
	t.Logf("chaos totals: %d gets, %d sets, %d deletes, %d items live",
		st.Gets, st.Sets, st.Deletes, st.CurrItems)
}

// TestChaosKillDuringCheckpoint kills the bookkeeper at every crash point
// inside the image writer, while client workers are live, and asserts the
// survivor of the crash — a fresh bookkeeper reloading from disk — always
// finds a verifying image whose every entry is internally consistent.
func TestChaosKillDuringCheckpoint(t *testing.T) {
	points := []string{}
	for _, p := range faultpoint.Names() {
		if strings.HasPrefix(p, "persist.") {
			points = append(points, p)
		}
	}
	if len(points) == 0 {
		t.Fatal("no persist.* fault points registered")
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			defer faultpoint.DisarmAll()
			path := filepath.Join(t.TempDir(), "store.img")
			book, err := memcached.CreateStore(memcached.Config{
				HeapBytes: 32 << 20, Path: path, HashPower: 10, NumItemLocks: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Self-describing values: a value must always decode to its own
			// key, whatever generation the survivor ends up on.
			val := func(k []byte, seq int) []byte {
				return []byte(fmt.Sprintf("v:%s:%d", k, seq))
			}
			cp, err := book.NewClientProcess(1001)
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				s, err := cp.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(id int, s *memcached.Session) {
					defer wg.Done()
					defer s.Close()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := []byte(fmt.Sprintf("w%d-k%d", id, i%400))
						if err := s.Set(k, val(k, i), 0, 0); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(w, s)
			}
			time.Sleep(3 * time.Millisecond)
			if err := book.Checkpoint(); err != nil { // generation 1: intact
				t.Fatal(err)
			}
			time.Sleep(3 * time.Millisecond)

			// The bookkeeper dies at the armed point inside checkpoint 2,
			// with the workers still running.
			if err := faultpoint.Arm(point, func() {
				panic("chaos: bookkeeper dies at " + point)
			}); err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("checkpoint completed; %s never fired", point)
					}
				}()
				_ = book.Checkpoint()
			}()
			faultpoint.DisarmAll()
			close(stop)
			wg.Wait()
			// No Shutdown: the dying bookkeeper flushes nothing.

			book2, err := memcached.OpenStore(memcached.Config{Path: path})
			if err != nil {
				t.Fatalf("survivor reload after death at %s: %v", point, err)
			}
			defer book2.Shutdown()
			if _, err := book2.Allocator().Check(); err != nil {
				t.Fatalf("survivor heap fsck: %v", err)
			}
			vp, err := book2.NewClientProcess(2001)
			if err != nil {
				t.Fatal(err)
			}
			vs, err := vp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			defer vs.Close()
			found := 0
			for id := 0; id < 3; id++ {
				for i := 0; i < 400; i++ {
					k := []byte(fmt.Sprintf("w%d-k%d", id, i))
					v, _, err := vs.Get(k)
					if errors.Is(err, memcached.ErrNotFound) {
						continue
					}
					if err != nil {
						t.Fatalf("survivor key %s: %v", k, err)
					}
					if !bytes.HasPrefix(v, []byte(fmt.Sprintf("v:%s:", k))) {
						t.Fatalf("survivor key %s decoded to a foreign value %q", k, v)
					}
					found++
				}
			}
			if found == 0 {
				t.Fatal("no keys survived the checkpoint crash at all")
			}
			if err := vs.Set([]byte("post-crash"), []byte("alive"), 0, 0); err != nil {
				t.Fatalf("survivor not writable: %v", err)
			}
			if err := book2.Checkpoint(); err != nil {
				t.Fatalf("survivor cannot checkpoint: %v", err)
			}
			t.Logf("%s: survivor served %d keys after the mid-checkpoint death", point, found)
		})
	}
}
