package plibmc

// Full-stack integration tests: scenarios that cross every layer of the
// system, from the wire protocols down to the shared heap.

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"plibmc/internal/client"
	"plibmc/internal/server"
	"plibmc/internal/ycsb"
	"plibmc/memcached"
	"plibmc/memcached/compat"
)

// TestScenarioLocalAndRemoteClients is the paper's deployment picture plus
// the §6 hybrid extension: local client processes use trampolined calls
// while remote clients reach the same store over both wire protocols, all
// concurrently.
func TestScenarioLocalAndRemoteClients(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 64 << 20, HashPower: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.StartMaintenance(50 * time.Millisecond)
	defer book.StopMaintenance()

	sock := filepath.Join(t.TempDir(), "hybrid.sock")
	remote, err := book.ServeRemote("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	// Three local processes, two threads each.
	for p := 0; p < 3; p++ {
		cp, err := book.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for th := 0; th < 2; th++ {
			s, err := cp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(id int, s *memcached.Session) {
				defer wg.Done()
				defer s.Close()
				for i := 0; i < 500; i++ {
					k := []byte(fmt.Sprintf("local-%d-%d", id, i))
					if err := s.Set(k, []byte("L"), 0, 0); err != nil {
						errCh <- err
						return
					}
					if _, _, err := s.Get(k); err != nil {
						errCh <- err
						return
					}
				}
			}(p*2+th, s)
		}
	}

	// Two remote clients, one per protocol.
	for i, proto := range []client.Protocol{client.Binary, client.ASCII} {
		wg.Add(1)
		go func(id int, proto client.Protocol) {
			defer wg.Done()
			c, err := client.Dial("unix", sock, proto)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("remote-%d-%d", id, i))
				if err := c.Set(k, []byte("R"), 0, 0); err != nil {
					errCh <- err
					return
				}
				if _, _, _, err := c.Get(k); err != nil {
					errCh <- err
					return
				}
			}
		}(i, proto)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Cross-visibility: a fresh local session sees remote writes and vice
	// versa.
	cp, _ := book.NewClientProcess(2000)
	s, _ := cp.NewSession()
	defer s.Close()
	if v, _, err := s.Get([]byte("remote-0-0")); err != nil || string(v) != "R" {
		t.Fatalf("local sees remote write: %q, %v", v, err)
	}
	c, _ := client.Dial("unix", sock, client.Binary)
	defer c.Close()
	if v, _, _, err := c.Get([]byte("local-0-0")); err != nil || string(v) != "L" {
		t.Fatalf("remote sees local write: %q, %v", v, err)
	}
	st := book.Stats()
	if st.CurrItems != 3*2*500+2*300 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
}

// TestScenarioYCSBBothBackends runs a small YCSB mix through the classic
// compat API against both backends and checks they agree on final state
// for a deterministic operation sequence.
func TestScenarioYCSBBothBackends(t *testing.T) {
	// Socket backend.
	sock := filepath.Join(t.TempDir(), "mc.sock")
	srv, err := server.New(server.Config{Network: "unix", Addr: sock, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	conn, err := client.Dial("unix", sock, client.Binary)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mSock := compat.Create()
	mSock.UseSocket(conn)

	// Plib backend.
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 32 << 20, HashPower: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	cp, _ := book.NewClientProcess(1000)
	sess, _ := cp.NewSession()
	defer sess.Close()
	mPlib := compat.Create()
	mPlib.UsePlib(sess)

	w := ycsb.WriteHeavy128(500)
	run := func(m *compat.St) map[string]string {
		gen := w.NewClient(42) // same seed: identical op stream
		final := map[string]string{}
		for i := 0; i < 3000; i++ {
			kind, key, val := gen.Next()
			if kind == ycsb.OpRead {
				m.Get(key)
			} else {
				if rc := m.Set(key, val, 0, 0); rc != compat.Success {
					t.Fatalf("set: %v", rc)
				}
				final[string(key)] = string(val)
			}
		}
		return final
	}
	wantSock := run(mSock)
	wantPlib := run(mPlib)
	if len(wantSock) != len(wantPlib) {
		t.Fatalf("backends diverged: %d vs %d keys written", len(wantSock), len(wantPlib))
	}
	for k, v := range wantSock {
		gotS, _, rcS := mSock.Get([]byte(k))
		gotP, _, rcP := mPlib.Get([]byte(k))
		if rcS != compat.Success || rcP != compat.Success {
			t.Fatalf("key %q: rc sock=%v plib=%v", k, rcS, rcP)
		}
		if !bytes.Equal(gotS, gotP) || string(gotS) != v {
			t.Fatalf("key %q: sock=%q plib=%q want=%q", k, gotS, gotP, v)
		}
	}
}

// TestScenarioRestartUnderLoad exercises shutdown-flush-reopen with a
// populated store and checks the reopened store serves the full working
// set and accepts new load.
func TestScenarioRestartUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.img")
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 32 << 20, Path: path, HashPower: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := book.NewClientProcess(1000)
	s, _ := cp.NewSession()
	w := ycsb.WriteHeavy128(2000)
	key := make([]byte, 0, 20)
	val := make([]byte, w.ValueSize)
	for i := uint64(0); i < w.RecordCount; i++ {
		key = ycsb.KeyInto(key, i)
		ycsb.FillValue(val, i)
		if err := s.Set(key, val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := book.Shutdown(); err != nil {
		t.Fatal(err)
	}

	book2, err := memcached.OpenStore(memcached.Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer book2.Shutdown()
	cp2, _ := book2.NewClientProcess(1000)
	s2, _ := cp2.NewSession()
	defer s2.Close()
	want := make([]byte, w.ValueSize)
	for i := uint64(0); i < w.RecordCount; i++ {
		key = ycsb.KeyInto(key, i)
		ycsb.FillValue(want, i)
		v, _, err := s2.Get(key)
		if err != nil || !bytes.Equal(v, want) {
			t.Fatalf("record %d after restart: err=%v", i, err)
		}
	}
	// New load on the reopened store, concurrently.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ss, err := cp2.NewSession()
			if err != nil {
				t.Error(err)
				return
			}
			defer ss.Close()
			for i := 0; i < 500; i++ {
				if err := ss.Set([]byte(fmt.Sprintf("new-%d-%d", g, i)), []byte("x"), 0, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := book2.Stats(); st.CurrItems != w.RecordCount+4*500 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
}

// TestScenarioEvictionKeepsServing drives the store far past its memory
// limit and verifies the working set keeps being served while old records
// are evicted, with maintenance running concurrently.
func TestScenarioEvictionKeepsServing(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 8 << 20, MemLimit: 4 << 20, HashPower: 10, FixedSize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.StartMaintenance(10 * time.Millisecond)
	defer book.StopMaintenance()

	cp, _ := book.NewClientProcess(1000)
	s, _ := cp.NewSession()
	defer s.Close()
	val := make([]byte, 1024)
	for i := 0; i < 20000; i++ {
		k := []byte(fmt.Sprintf("rec-%06d", i))
		if err := s.Set(k, val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if i%100 == 0 {
			// The most recent write is always readable.
			if _, _, err := s.Get(k); err != nil {
				t.Fatalf("hot record %d evicted: %v", i, err)
			}
		}
	}
	st := book.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if _, _, err := s.Get([]byte("rec-000000")); !errors.Is(err, memcached.ErrNotFound) {
		t.Fatal("oldest record should be gone")
	}
	if book.Allocator().LiveBytes() > book.Store().MemLimit() {
		t.Fatalf("live bytes %d above limit %d", book.Allocator().LiveBytes(), book.Store().MemLimit())
	}
}
